#include "sql/executor.h"

#include <sstream>

#include "storage/stats.h"
#include "view/planner.h"

namespace pjvm::sql {

Status Executor::Execute(const std::string& statement, std::ostream& os) {
  PJVM_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseStatement(statement));
  return Run(stmt, os);
}

Status Executor::ExecuteScript(const std::string& script, std::ostream& os) {
  std::string current;
  for (char c : script) {
    current += c;
    if (c == ';') {
      // Skip statements that are only whitespace/semicolons.
      bool blank = true;
      for (char x : current) {
        if (!std::isspace(static_cast<unsigned char>(x)) && x != ';') {
          blank = false;
          break;
        }
      }
      if (!blank) PJVM_RETURN_NOT_OK(Execute(current, os));
      current.clear();
    }
  }
  bool blank = true;
  for (char x : current) {
    if (!std::isspace(static_cast<unsigned char>(x))) blank = false;
  }
  if (!blank) PJVM_RETURN_NOT_OK(Execute(current, os));
  return Status::OK();
}

Status Executor::Run(const ParsedStatement& stmt, std::ostream& os) {
  ParallelSystem* sys = manager_->system();
  switch (stmt.kind) {
    case StatementKind::kCreateTable: {
      PJVM_RETURN_NOT_OK(sys->CreateTable(stmt.create_table));
      os << "created table " << stmt.create_table.name << " "
         << stmt.create_table.schema.ToString() << " "
         << stmt.create_table.partition.ToString() << "\n";
      return Status::OK();
    }
    case StatementKind::kCreateView: {
      PJVM_RETURN_NOT_OK(manager_->RegisterView(stmt.create_view, stmt.method));
      os << "created view " << stmt.create_view.name << " ("
         << MaintenanceMethodToString(stmt.method) << ", "
         << manager_->view(stmt.create_view.name)->RowCount()
         << " rows backfilled)\n";
      return Status::OK();
    }
    case StatementKind::kInsert: {
      DeltaBatch delta = DeltaBatch::Inserts(stmt.table, stmt.rows);
      PJVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                            manager_->ApplyDelta(std::move(delta)));
      os << "inserted " << stmt.rows.size() << " row(s)";
      if (report.view_rows_inserted + report.view_rows_deleted > 0) {
        os << "; views +" << report.view_rows_inserted << "/-"
           << report.view_rows_deleted;
      }
      os << "\n";
      return Status::OK();
    }
    case StatementKind::kDelete: {
      DeltaBatch delta = DeltaBatch::Deletes(stmt.table, stmt.rows);
      PJVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                            manager_->ApplyDelta(std::move(delta)));
      os << "deleted " << stmt.rows.size() << " row(s)";
      if (report.view_rows_inserted + report.view_rows_deleted > 0) {
        os << "; views +" << report.view_rows_inserted << "/-"
           << report.view_rows_deleted;
      }
      os << "\n";
      return Status::OK();
    }
    case StatementKind::kSelect: {
      std::vector<Row> rows;
      if (stmt.where.has_value()) {
        PJVM_ASSIGN_OR_RETURN(
            rows, sys->SelectEq(stmt.table, stmt.where->first,
                                stmt.where->second));
      } else if (stmt.where_range.has_value()) {
        PJVM_ASSIGN_OR_RETURN(
            rows, sys->SelectRange(stmt.table, stmt.where_range->column,
                                   stmt.where_range->lo, stmt.where_range->hi));
      } else {
        if (!sys->catalog().Has(stmt.table)) {
          return Status::NotFound("no table '" + stmt.table + "'");
        }
        rows = sys->ScanAll(stmt.table);
      }
      PJVM_ASSIGN_OR_RETURN(const TableDef* def, sys->catalog().Get(stmt.table));
      os << def->schema.ToString() << "\n";
      for (const Row& row : rows) {
        os << "  " << RowToString(row) << "\n";
      }
      os << "(" << rows.size() << " row(s))\n";
      return Status::OK();
    }
    case StatementKind::kShowTables: {
      for (const std::string& name : sys->catalog().ListNames()) {
        PJVM_ASSIGN_OR_RETURN(const TableDef* def, sys->catalog().Get(name));
        os << "  " << TableKindToString(def->kind) << " " << name << " ("
           << sys->RowCount(name) << " rows, " << sys->TableBytes(name)
           << " bytes)\n";
      }
      return Status::OK();
    }
    case StatementKind::kShowCost: {
      os << sys->cost().ToString() << "\n";
      return Status::OK();
    }
    case StatementKind::kDropView: {
      PJVM_RETURN_NOT_OK(manager_->UnregisterView(stmt.table));
      os << "dropped view " << stmt.table << "\n";
      return Status::OK();
    }
    case StatementKind::kExplainAnalyze: {
      DeltaBatch delta = stmt.analyze_delete
                             ? DeltaBatch::Deletes(stmt.table, stmt.rows)
                             : DeltaBatch::Inserts(stmt.table, stmt.rows);
      MaintenanceAnalysis analysis;
      PJVM_RETURN_NOT_OK(
          manager_->ApplyDelta(std::move(delta), &analysis).status());
      os << analysis.ToString();
      return Status::OK();
    }
    case StatementKind::kExplain: {
      if (!sys->catalog().Has(stmt.table)) {
        return Status::NotFound("no table '" + stmt.table + "'");
      }
      bool any = false;
      for (const std::string& name : manager_->ViewNames()) {
        const ViewRegistration* reg = manager_->registration(name);
        int updated_base = -1;
        for (int i = 0; i < reg->bound.num_bases(); ++i) {
          if (reg->bound.base_def(i).name == stmt.table) updated_base = i;
        }
        if (updated_base < 0) continue;
        any = true;
        FanoutFn fanout = [&](int base, int col) {
          const std::string& table = reg->bound.base_def(base).name;
          std::vector<ColumnStats> parts;
          for (int n = 0; n < sys->num_nodes(); ++n) {
            const TableFragment* frag = sys->node(n)->fragment(table);
            if (frag != nullptr) {
              parts.push_back(ComputeColumnStats(*frag, col));
            }
          }
          double f = MergeColumnStats(parts).AvgFanout();
          return f > 0.0 ? f : 1.0;
        };
        PJVM_ASSIGN_OR_RETURN(MaintenancePlan plan,
                              PlanMaintenance(reg->bound, updated_base, fanout));
        os << "  view " << name << " ["
           << MaintenanceMethodToString(reg->method)
           << "]: " << plan.ToString(reg->bound) << "  (est. cost/tuple "
           << EstimatePlanCost(reg->bound, plan, fanout) << ")\n";
      }
      if (!any) os << "  no registered views reference " << stmt.table << "\n";
      return Status::OK();
    }
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace pjvm::sql
