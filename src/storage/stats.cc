#include "storage/stats.h"

#include <unordered_set>

#include "common/value.h"

namespace pjvm {

ColumnStats ComputeColumnStats(const TableFragment& fragment, int column) {
  ColumnStats stats;
  // Use the index's distinct-key count when one exists; otherwise scan.
  const LocalIndex* index = fragment.FindIndex(column);
  if (index != nullptr) {
    stats.row_count = index->tree.num_items();
    stats.distinct_count = index->tree.num_keys();
    return stats;
  }
  std::unordered_set<uint64_t> seen;
  fragment.ForEach([&](LocalRowId, const Row& row) {
    ++stats.row_count;
    seen.insert(row[column].Hash());
    return true;
  });
  stats.distinct_count = seen.size();
  return stats;
}

ColumnStats ComputeColumnStats(const MvccState& state, uint64_t epoch,
                               int column) {
  ColumnStats stats;
  std::unordered_set<uint64_t> seen;
  for (const Row& row : MvccAllRows(state, epoch)) {
    ++stats.row_count;
    seen.insert(row[column].Hash());
  }
  stats.distinct_count = seen.size();
  return stats;
}

ColumnStats MergeColumnStats(const std::vector<ColumnStats>& parts) {
  ColumnStats out;
  for (const ColumnStats& p : parts) {
    out.row_count += p.row_count;
    out.distinct_count += p.distinct_count;
  }
  return out;
}

}  // namespace pjvm
