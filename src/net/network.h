#ifndef PJVM_NET_NETWORK_H_
#define PJVM_NET_NETWORK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/message.h"

namespace pjvm {

/// \brief The simulated shared-nothing interconnect.
///
/// Every cross-node data movement in the engine goes through Send(); this is
/// what makes the paper's SEND accounting and the per-method locality claims
/// (single-node vs few-node vs all-node) measurable and testable.
///
/// Semantics follow the paper's model:
///  - a point-to-point send where source == destination is "conceptual": the
///    message is delivered but no SEND is charged (the dashed lines in
///    Figures 2/4/6);
///  - Broadcast() charges one SEND per destination including the sender's
///    own node, matching the naive method's L*SEND term.
///
/// The queues and counters are guarded by one mutex (with a condition
/// variable signaled on every enqueue), so the thread-per-node executor's
/// workers can Send/Poll concurrently. SEND cost charges go to the atomic
/// CostTracker, so charging a message's source from another node's worker is
/// race-free.
class Network {
 public:
  Network(int num_nodes, CostTracker* tracker);

  int num_nodes() const { return num_nodes_; }

  /// Enqueues `msg` for `msg.to`, charging SEND to `msg.from` unless the
  /// message stays on-node.
  Status Send(Message msg);

  /// Sends a copy of `msg` to every node (setting to/from), charging
  /// `num_nodes` SENDs to the sender as in the paper's naive-method model.
  /// Takes the payload by value: the last destination receives it by move,
  /// so an rvalue broadcast deep-copies L-1 times, not L.
  Status Broadcast(int from, Message msg);

  /// Dequeues the next pending message for `node`, if any — regardless of
  /// which transaction it belongs to. **Single-coordinator / test use
  /// only:** no drain loop reachable while concurrent maintenance
  /// transactions are in flight may call this (it would steal their
  /// messages); such loops use PollTxn, and synchronous hops use
  /// SendAndDeliver. As of the escalation PR every src/ drain loop complies
  /// (maintainer broadcast drains poll per-txn; AR/GI/view hops are
  /// SendAndDeliver); tests/net_test.cc pins the interleaving semantics.
  std::optional<Message> Poll(int node);

  /// Dequeues the first pending message for `node` whose txn_id matches,
  /// skipping (and leaving queued) other transactions' messages. Concurrent
  /// broadcast/drain loops must use this instead of Poll(): with several
  /// maintenance transactions in flight, a plain Poll can dequeue another
  /// transaction's message from the shared per-node queue.
  std::optional<Message> PollTxn(int node, uint64_t txn_id);

  /// A synchronous hop: charges and counts the message exactly like
  /// Send()+Poll(msg.to) but hands the payload straight back to the caller
  /// instead of routing it through the destination queue. Use when the
  /// sending thread itself consumes the message at the destination — under
  /// concurrent transactions a Send/Poll pair can dequeue *another*
  /// transaction's message from the shared queue.
  Result<Message> SendAndDeliver(Message msg);

  /// Blocking Poll: waits until a message for `node` is available. The
  /// deadline guards against a peer that never sends (returns nullopt).
  std::optional<Message> PollWait(int node, uint64_t timeout_ms = 1000);

  /// True if any node has undelivered messages.
  bool HasPending() const;
  size_t PendingCount(int node) const;

  /// Messages sent from i to j since construction/reset (self-sends are
  /// counted here even though they cost nothing).
  uint64_t PairCount(int from, int to) const;
  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;

  void ResetCounters();

 private:
  Status Validate(const Message& msg) const;
  /// Accounting + enqueue for one already-validated hop; `mu_` must be held.
  void EnqueueLocked(Message msg, bool charge_self);

  const int num_nodes_;
  CostTracker* tracker_;

  mutable std::mutex mu_;
  std::condition_variable arrival_cv_;
  std::vector<std::deque<Message>> queues_;
  std::vector<uint64_t> pair_counts_;
  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_NET_NETWORK_H_
