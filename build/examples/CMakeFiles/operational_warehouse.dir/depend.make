# Empty dependencies file for operational_warehouse.
# This may be replaced when dependencies are built.
