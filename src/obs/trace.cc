#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pjvm {

namespace {

/// Escapes a string for embedding in a JSON literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

thread_local Tracer::ThreadBuffer* Tracer::tl_buffer_ = nullptr;

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives every thread
  return *tracer;
}

uint64_t Tracer::NowNs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  if (tl_buffer_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<int>(buffers_.size());
    buffer->head = std::make_unique<Chunk>();
    buffer->tail = buffer->head.get();
    tl_buffer_ = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return tl_buffer_;
}

void Tracer::Record(TraceSpan span) {
  ThreadBuffer* buffer = LocalBuffer();
  span.tid = buffer->tid;
  Chunk* tail = buffer->tail;
  size_t count = tail->count.load(std::memory_order_relaxed);
  if (count == Chunk::kCapacity) {
    Chunk* next = new Chunk();
    // Publish the link before ever publishing a count > 0 in it.
    tail->next.store(next, std::memory_order_release);
    buffer->tail = tail = next;
    count = 0;
  }
  tail->spans[count] = std::move(span);
  tail->count.store(count + 1, std::memory_order_release);
}

int Tracer::OpenSpan() { return LocalBuffer()->depth++; }

void Tracer::CloseSpan() { --LocalBuffer()->depth; }

void Tracer::SetCurrentThreadName(std::string name) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(mu_);
  buffer->name = std::move(name);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) {
    // Quiescence is a precondition, so no owner is appending: drop every
    // chunk past the head and rewind. The owner's cached tail is the shared
    // field reset here.
    delete buffer->head->next.exchange(nullptr, std::memory_order_acq_rel);
    buffer->head->count.store(0, std::memory_order_release);
    buffer->tail = buffer->head.get();
  }
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    for (const Chunk* chunk = buffer->head.get(); chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      size_t count = chunk->count.load(std::memory_order_acquire);
      for (size_t i = 0; i < count; ++i) out.push_back(chunk->spans[i]);
    }
  }
  return out;
}

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"pjvm\"}}";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::string name = buffer->name.empty()
                             ? "thread-" + std::to_string(buffer->tid)
                             : buffer->name;
      os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << buffer->tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
         << JsonEscape(name) << "\"}}";
    }
  }
  for (const TraceSpan& span : Snapshot()) {
    os << ",\n{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
       << JsonEscape(span.category) << "\",\"pid\":1,\"tid\":" << span.tid
       << ",\"ts\":" << static_cast<double>(span.start_ns) / 1000.0;
    if (span.kind == TraceSpan::Kind::kComplete) {
      os << ",\"ph\":\"X\",\"dur\":"
         << static_cast<double>(span.dur_ns) / 1000.0;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":{";
    const char* sep = "";
    if (span.node >= 0) {
      os << sep << "\"node\":" << span.node;
      sep = ",";
    }
    if (span.method != nullptr) {
      os << sep << "\"method\":\"" << JsonEscape(span.method) << "\"";
      sep = ",";
    }
    if (!span.detail.empty()) {
      os << sep << "\"detail\":\"" << JsonEscape(span.detail) << "\"";
      sep = ",";
    }
    if (span.has_cost) {
      os << sep << "\"searches\":" << span.cost.searches
         << ",\"fetches\":" << span.cost.fetches
         << ",\"inserts\":" << span.cost.inserts
         << ",\"sends\":" << span.cost.sends;
      sep = ",";
    }
    if (span.bytes > 0) {
      os << sep << "\"bytes\":" << span.bytes;
      sep = ",";
    }
    (void)sep;
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

Status Tracer::ExportChromeTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("cannot open trace output file '" + path + "'");
  }
  file << ChromeTraceJson();
  if (!file.good()) {
    return Status::Internal("failed writing trace to '" + path + "'");
  }
  return Status::OK();
}

SpanGuard::SpanGuard(const char* name, const char* category, int node,
                     CostTracker* cost, const char* method) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  span_.name = name;
  span_.category = category;
  span_.node = node;
  span_.method = method;
  span_.depth = tracer.OpenSpan();
  if (cost != nullptr && node >= 0) {
    cost_ = cost;
    start_cost_ = cost->node(node);
  }
  span_.start_ns = Tracer::NowNs();
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  span_.dur_ns = Tracer::NowNs() - span_.start_ns;
  if (cost_ != nullptr) {
    span_.cost = cost_->node(span_.node) - start_cost_;
    span_.has_cost = true;
  }
  Tracer& tracer = Tracer::Global();
  tracer.CloseSpan();
  tracer.Record(std::move(span_));
}

void SpanGuard::set_detail(std::string detail) {
  if (active_) span_.detail = std::move(detail);
}

void TraceInstant(const char* name, const char* category, int node,
                  uint64_t bytes, std::string detail) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  TraceSpan span;
  span.kind = TraceSpan::Kind::kInstant;
  span.name = name;
  span.category = category;
  span.node = node;
  span.bytes = bytes;
  span.detail = std::move(detail);
  span.start_ns = Tracer::NowNs();
  tracer.Record(std::move(span));
}

}  // namespace pjvm
