#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace pjvm {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing widget");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing widget");
  EXPECT_EQ(st.ToString(), "Not found: missing widget");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status FailsThrough() {
  PJVM_RETURN_NOT_OK(Status::Aborted("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status st = FailsThrough();
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(st.message(), "inner");
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chain(int x) {
  PJVM_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Chain(10), 21);
  EXPECT_FALSE(Chain(-5).ok());
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 9);
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, TypesAndAccessors) {
  Value i{int64_t{7}};
  Value d{3.5};
  Value s{"abc"};
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt64(), 7);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value{1}, Value{1});
  EXPECT_NE(Value{1}, Value{2});
  EXPECT_LT(Value{1}, Value{2});
  EXPECT_LT(Value{"a"}, Value{"b"});
  EXPECT_LT(Value{1.0}, Value{1.5});
  EXPECT_GE(Value{"b"}, Value{"b"});
}

TEST(ValueTest, HashIsDeterministicAndSpreads) {
  EXPECT_EQ(Value{42}.Hash(), Value{42}.Hash());
  EXPECT_EQ(Value{"xyz"}.Hash(), Value{"xyz"}.Hash());
  // Different values should essentially never collide in a small sample.
  std::unordered_set<uint64_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) hashes.insert(Value{i}.Hash());
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(ValueTest, NegativeZeroHashesLikePositiveZero) {
  EXPECT_EQ(Value{0.0}.Hash(), Value{-0.0}.Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value{5}.ToString(), "5");
  EXPECT_EQ(Value{"hi"}.ToString(), "hi");
  EXPECT_EQ(Value{2.5}.ToString(), "2.5");
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value{5}.ByteSize(), 8u);
  EXPECT_EQ(Value{2.5}.ByteSize(), 8u);
  EXPECT_EQ(Value{"abcd"}.ByteSize(), 5u);
}

// ---------------------------------------------------------------- Row

TEST(RowTest, HashDistinguishesPermutations) {
  Row a = {Value{1}, Value{2}};
  Row b = {Value{2}, Value{1}};
  EXPECT_NE(HashRow(a), HashRow(b));
  EXPECT_EQ(HashRow(a), HashRow(Row{Value{1}, Value{2}}));
}

TEST(RowTest, ProjectAndConcat) {
  Row r = {Value{10}, Value{"x"}, Value{2.5}};
  Row p = ProjectRow(r, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value{2.5});
  EXPECT_EQ(p[1], Value{10});
  Row c = ConcatRows(Row{Value{1}}, Row{Value{2}, Value{3}});
  EXPECT_EQ(c, (Row{Value{1}, Value{2}, Value{3}}));
}

TEST(RowTest, ToStringFormatsTuples) {
  EXPECT_EQ(RowToString(Row{Value{1}, Value{"a"}}), "(1, a)");
}

// ---------------------------------------------------------------- Schema

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble}});
}

TEST(SchemaTest, ColumnLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.ColumnIndex("id"), 0);
  EXPECT_EQ(*s.ColumnIndex("score"), 2);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
  EXPECT_TRUE(s.HasColumn("name"));
  EXPECT_FALSE(s.HasColumn("nope"));
}

TEST(SchemaTest, ValidateRow) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateRow({Value{1}, Value{"a"}, Value{1.0}}).ok());
  // Wrong arity.
  EXPECT_FALSE(s.ValidateRow({Value{1}, Value{"a"}}).ok());
  // Wrong type.
  EXPECT_FALSE(s.ValidateRow({Value{1}, Value{2}, Value{1.0}}).ok());
}

TEST(SchemaTest, ConcatPrefixesNames) {
  Schema a({{"x", ValueType::kInt64}});
  Schema b({{"y", ValueType::kString}});
  Schema c = Schema::Concat(a, "A", b, "B");
  ASSERT_EQ(c.num_columns(), 2);
  EXPECT_EQ(c.column(0).name, "A.x");
  EXPECT_EQ(c.column(1).name, "B.y");
}

TEST(SchemaTest, ProjectKeepsOrder) {
  Schema p = TestSchema().Project({2, 0});
  ASSERT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.column(0).name, "score");
  EXPECT_EQ(p.column(1).name, "id");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
  // Every bucket of a small range gets hit.
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, ChargesAccumulatePerNode) {
  CostTracker t(3);
  t.ChargeSearch(0);
  t.ChargeFetch(0, 4);
  t.ChargeInsert(1);
  t.ChargeSend(2, 100);
  EXPECT_EQ(t.node(0).searches, 1u);
  EXPECT_EQ(t.node(0).fetches, 4u);
  EXPECT_EQ(t.node(1).inserts, 1u);
  EXPECT_EQ(t.node(2).sends, 1u);
  EXPECT_EQ(t.node(2).bytes_sent, 100u);
}

TEST(MetricsTest, PaperWeightsByDefault) {
  CostTracker t(2);
  t.ChargeSearch(0);      // 1 I/O
  t.ChargeFetch(0, 2);    // 2 I/O
  t.ChargeInsert(1);      // 2 I/O
  t.ChargeSend(1, 10);    // 0 I/O with default weights
  EXPECT_DOUBLE_EQ(t.TotalWorkload(), 5.0);
  EXPECT_DOUBLE_EQ(t.ResponseTime(), 3.0);  // Node 0 carries 3 I/Os.
}

TEST(MetricsTest, NodesTouchedCountsActiveNodes) {
  CostTracker t(4);
  EXPECT_EQ(t.NodesTouched(), 0);
  t.ChargeSearch(1);
  t.ChargeSend(3, 1);
  EXPECT_EQ(t.NodesTouched(), 2);
}

TEST(MetricsTest, ResetClears) {
  CostTracker t(2);
  t.ChargeInsert(0, 5);
  t.Reset();
  EXPECT_DOUBLE_EQ(t.TotalWorkload(), 0.0);
  EXPECT_EQ(t.NodesTouched(), 0);
}

TEST(MetricsTest, SnapshotDiffIsolatesPhases) {
  CostTracker t(2);
  t.ChargeSearch(0, 3);
  auto before = t.Snapshot();
  t.ChargeSearch(0, 2);
  t.ChargeInsert(1, 1);
  NodeCounters d0 = t.node(0) - before[0];
  NodeCounters d1 = t.node(1) - before[1];
  EXPECT_EQ(d0.searches, 2u);
  EXPECT_EQ(d1.inserts, 1u);
}

}  // namespace
}  // namespace pjvm
