#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/view_test_util.h"

namespace pjvm {
namespace {

using sql::Lex;
using sql::ParseCreateView;
using sql::Token;
using sql::TokenType;

// ----------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesAllCategories) {
  auto tokens = Lex("CREATE view V as SELECT a.b, 12 3.5 'hi' <> <= ; *");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kKeyword, TokenType::kKeyword, TokenType::kIdent,
                TokenType::kKeyword, TokenType::kKeyword, TokenType::kIdent,
                TokenType::kSymbol, TokenType::kIdent, TokenType::kSymbol,
                TokenType::kInt, TokenType::kDouble, TokenType::kString,
                TokenType::kOperator, TokenType::kOperator, TokenType::kSymbol,
                TokenType::kSymbol, TokenType::kEnd}));
}

TEST(LexerTest, KeywordsCaseInsensitiveIdentsPreserved) {
  auto tokens = Lex("select MyTable");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "MyTable");
}

TEST(LexerTest, NegativeNumbersAndDoubles) {
  auto tokens = Lex("-42 -1.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInt);
  EXPECT_EQ((*tokens)[0].text, "-42");
  EXPECT_EQ((*tokens)[1].type, TokenType::kDouble);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Lex("select 'oops").ok());
}

TEST(LexerTest, RejectsUnknownCharacter) { EXPECT_FALSE(Lex("a @ b").ok()); }

// ---------------------------------------------------------------- Parser

TEST(ParserTest, ParsesThePaperViewDefinition) {
  // The paper's Section 2.1 example verbatim.
  auto def = ParseCreateView(
      "create join view JV as select * from A, B where A.c=B.d "
      "partitioned on A.e;");
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->name, "JV");
  ASSERT_EQ(def->bases.size(), 2u);
  EXPECT_EQ(def->bases[0].table, "A");
  EXPECT_EQ(def->bases[0].alias, "A");  // No alias given: table name.
  ASSERT_EQ(def->edges.size(), 1u);
  EXPECT_EQ(def->edges[0].left.ToString(), "A.c");
  EXPECT_EQ(def->edges[0].right.ToString(), "B.d");
  EXPECT_TRUE(def->projection.empty());  // SELECT *.
  ASSERT_TRUE(def->partition_on.has_value());
  EXPECT_EQ(def->partition_on->ToString(), "A.e");
}

TEST(ParserTest, ParsesJv2StyleThreeWayView) {
  auto def = ParseCreateView(
      "create view JV2 as select c.custkey, c.acctbal, o.orderkey, "
      "o.totalprice, l.discount, l.extendedprice "
      "from orders o, customer c, lineitem l "
      "where c.custkey=o.custkey and o.orderkey=l.orderkey");
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->name, "JV2");
  ASSERT_EQ(def->bases.size(), 3u);
  EXPECT_EQ(def->bases[0].table, "orders");
  EXPECT_EQ(def->bases[0].alias, "o");
  EXPECT_EQ(def->projection.size(), 6u);
  EXPECT_EQ(def->edges.size(), 2u);
  EXPECT_FALSE(def->partition_on.has_value());
}

TEST(ParserTest, ClassifiesSelectionsVsEdges) {
  auto def = ParseCreateView(
      "create view V as select * from A a, B b "
      "where a.c = b.d and a.e > 10 and b.f <> 'x' and a.e <= 2.5");
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->edges.size(), 1u);
  ASSERT_EQ(def->selections.size(), 3u);
  EXPECT_EQ(def->selections[0].op, PredOp::kGt);
  EXPECT_EQ(def->selections[0].constant, Value{10});
  EXPECT_EQ(def->selections[1].op, PredOp::kNe);
  EXPECT_EQ(def->selections[1].constant, Value{"x"});
  EXPECT_EQ(def->selections[2].op, PredOp::kLe);
  EXPECT_EQ(def->selections[2].constant, Value{2.5});
}

TEST(ParserTest, RejectsNonEqualityJoin) {
  EXPECT_FALSE(
      ParseCreateView("create view V as select * from A a, B b where a.c < b.d")
          .ok());
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseCreateView("select * from A").ok());
  EXPECT_FALSE(ParseCreateView("create view as select * from A").ok());
  EXPECT_FALSE(ParseCreateView("create view V as select from A").ok());
  EXPECT_FALSE(ParseCreateView("create view V as select * from").ok());
  EXPECT_FALSE(
      ParseCreateView("create view V as select * from A where a.c =").ok());
  EXPECT_FALSE(
      ParseCreateView("create view V as select * from A extra junk").ok());
}

TEST(ParserTest, ParsedViewBindsAndRuns) {
  // End-to-end: text -> JoinViewDef -> registered, maintained view.
  TwoTableFixture fx(4, 8, 2);
  auto def = ParseCreateView(
      "create join view JV as select A.e, B.f from A, B "
      "where A.c = B.d and A.e >= 0 partitioned on A.e;");
  ASSERT_TRUE(def.ok()) << def.status();
  ASSERT_TRUE(
      fx.manager->RegisterView(*def, MaintenanceMethod::kAuxRelation).ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  EXPECT_EQ(fx.manager->view("JV")->RowCount(), 2u);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST(ParserTest, OptionalSemicolonAndJoinKeyword) {
  EXPECT_TRUE(
      ParseCreateView("create view V as select * from A where A.c = 1").ok());
  EXPECT_TRUE(
      ParseCreateView("CREATE JOIN VIEW V AS SELECT * FROM A WHERE A.c = 1;")
          .ok());
}

}  // namespace
}  // namespace pjvm
