// Reproduces Figure 10: per-node response time of one transaction inserting
// 6,500 tuples — approximately |B| pages — where sort-merge wins and the
// naive method with clustered base relations beats the AR and GI methods
// (the paper's Section 3.1.2 crossover result).

#include <iostream>

#include "model/figures.h"

int main() {
  pjvm::model::PrintFigure(pjvm::model::MakeFigure10(), std::cout);
  return 0;
}
