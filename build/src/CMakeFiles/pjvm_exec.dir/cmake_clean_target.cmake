file(REMOVE_RECURSE
  "libpjvm_exec.a"
)
