file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tw_vs_fanout.dir/bench_fig8_tw_vs_fanout.cc.o"
  "CMakeFiles/bench_fig8_tw_vs_fanout.dir/bench_fig8_tw_vs_fanout.cc.o.d"
  "bench_fig8_tw_vs_fanout"
  "bench_fig8_tw_vs_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tw_vs_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
