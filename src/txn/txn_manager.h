#ifndef PJVM_TXN_TXN_MANAGER_H_
#define PJVM_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "storage/mvcc.h"
#include "storage/row_id.h"

namespace pjvm {

/// Transaction id 0 denotes autocommit: single operations outside an
/// explicit transaction, always considered committed.
inline constexpr uint64_t kAutoCommitTxnId = 0;

/// \brief Lifecycle state of a transaction at the coordinator.
enum class TxnState {
  kActive = 0,
  kPreparing,
  kCommitted,
  kAborted,
};

/// \brief Points where tests may inject a coordinator/system crash during
/// two-phase commit.
enum class FailurePoint {
  kNone = 0,
  /// Crash before any participant prepared: transaction must roll back.
  kBeforePrepare,
  /// Crash after all participants prepared but before the coordinator logged
  /// its decision: transaction must roll back (presumed abort).
  kAfterPrepare,
  /// Crash after the coordinator logged commit but before participants were
  /// told: transaction must still commit on recovery.
  kAfterDecision,
};

/// \brief One pending MVCC version operation, buffered per transaction
/// until commit publish (autocommit ops publish immediately and never pass
/// through here).
struct TxnVersionOp {
  int node;
  std::string table;
  MvccOp op;
};

/// \brief One compensating action for rolling back an in-flight transaction.
///
/// Undo is by row id (delete the slot that was inserted / re-insert the row
/// into the slot it was deleted from), applied in reverse order. Restoring a
/// deleted row at its *original* lrid matters: committed global-index entries
/// reference (node, lrid), so a compensating re-insert that lands anywhere
/// else would leave them dangling. The slot is guaranteed free: transactional
/// deletes reserve it (HeapFile::DeleteKeepSlot) until commit.
struct UndoOp {
  enum class Kind { kDeleteInserted, kReinsertDeleted } kind;
  int node;
  std::string table;
  Row row;
  LocalRowId lrid = 0;
};

/// \brief Transaction coordinator: ids, states, the durable decision log,
/// and per-transaction undo lists.
///
/// The execution engine (ParallelSystem) drives the 2PC protocol; this class
/// holds the authoritative state it reads during recovery.
///
/// All methods are guarded by one internal mutex: multiple client threads
/// begin/commit transactions concurrently while per-node executor workers
/// record participants and undo actions during parallel write fan-outs.
/// Accessors return copies, never references into the guarded maps.
///
/// **Lifetime of per-transaction state.** Working state (`states_`, undo
/// lists, participant sets) is dropped by `Forget()` once the engine
/// finishes commit or abort processing — memory stays bounded under a
/// sustained workload. The durable commit-decision set (`committed_ids_`)
/// must outlive that: WAL replay after a crash asks `IsCommitted()` about
/// any txn id appearing in a surviving log record. It is pruned only behind
/// the durable low-water mark — `PruneCommittedBelow()` at checkpoint, when
/// every node's WAL has been truncated and no id below the mark can appear
/// in a future replay. `state()` reports `kCommitted` for any id in the
/// decision set and `kAborted` for ids it no longer tracks, so forgetting a
/// finished transaction never changes the answer an observer sees.
class TxnManager {
 public:
  TxnManager() = default;

  /// Starts a transaction and returns its id (> 0). Ids increase
  /// monotonically; wait-die uses them as transaction age (smaller = older).
  uint64_t Begin();

  TxnState state(uint64_t txn_id) const;
  bool IsActive(uint64_t txn_id) const {
    return state(txn_id) == TxnState::kActive;
  }

  /// True iff the coordinator durably decided commit (autocommit always is).
  bool IsCommitted(uint64_t txn_id) const;

  /// True while any transaction is active or preparing.
  bool HasActive() const;

  /// Transitions used by the engine's 2PC driver.
  Status MarkPreparing(uint64_t txn_id);
  /// Durably logs the commit decision (the 2PC "commit point").
  Status LogCommitDecision(uint64_t txn_id);
  Status MarkAborted(uint64_t txn_id);

  /// Records a compensating action for an in-flight transaction.
  void PushUndo(uint64_t txn_id, UndoOp op);
  /// Takes (and clears) the undo list, most recent first.
  std::vector<UndoOp> TakeUndoReversed(uint64_t txn_id);
  /// Drops the undo list (on commit).
  void DiscardUndo(uint64_t txn_id);

  /// Buffers one MVCC version op to publish if this transaction commits
  /// (snapshot reads enabled only). Safe from concurrent node workers.
  void PushVersionOp(uint64_t txn_id, TxnVersionOp op);
  /// Takes (and clears) the buffered version ops in execution order.
  std::vector<TxnVersionOp> TakeVersionOps(uint64_t txn_id);

  /// Records that `node` executed a write for this transaction (it must be
  /// included in the 2PC vote round). Safe from concurrent node workers.
  void AddParticipant(uint64_t txn_id, int node);

  /// Participants that executed writes for this transaction. Returns a
  /// copy: the set mutates concurrently during parallel write fan-outs, and
  /// a reference into the map would dangle once the transaction is
  /// forgotten.
  std::set<int> participants(uint64_t txn_id) const;

  /// Drops the working state (lifecycle entry, undo list, participant set)
  /// of a finished transaction. Call after commit/abort processing is
  /// complete. The durable commit decision survives, so `state()` /
  /// `IsCommitted()` keep answering correctly.
  void Forget(uint64_t txn_id);

  /// Erases commit decisions for txn ids `< low_water`. Only call when no
  /// WAL can still hold records of those transactions (i.e., right after a
  /// checkpoint truncated every node's log). Returns how many were pruned.
  size_t PruneCommittedBelow(uint64_t low_water);

  /// The id the next Begin() will assign — the exclusive upper bound on all
  /// ids handed out so far (a valid `PruneCommittedBelow` low-water mark at
  /// a quiescent checkpoint).
  uint64_t next_txn_id() const;

  /// Failure injection for tests; consumed on first trigger.
  void InjectFailure(FailurePoint point) { failure_ = point; }
  /// Returns true (and clears the injection) when `point` matches.
  bool ShouldFailAt(FailurePoint point);

  /// Ids of all transactions whose decision log says commit.
  std::set<uint64_t> committed_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return committed_ids_;
  }

  /// Number of transactions with live working state (tests / introspection:
  /// verifies Forget() keeps memory bounded).
  size_t TrackedCount() const;

  /// Simulated coordinator crash: all working state of in-flight
  /// transactions is dropped (presumed abort — state is rebuilt from logs,
  /// not undone live). Only the durable decision set survives.
  void CrashAndRecover();

 private:
  mutable std::mutex mu_;
  uint64_t next_txn_id_ = 1;
  std::unordered_map<uint64_t, TxnState> states_;
  std::unordered_map<uint64_t, std::vector<UndoOp>> undo_;
  std::unordered_map<uint64_t, std::vector<TxnVersionOp>> version_ops_;
  std::unordered_map<uint64_t, std::set<int>> participants_;
  std::set<uint64_t> committed_ids_;
  FailurePoint failure_ = FailurePoint::kNone;
};

}  // namespace pjvm

#endif  // PJVM_TXN_TXN_MANAGER_H_
