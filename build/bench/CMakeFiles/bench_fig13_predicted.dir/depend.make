# Empty dependencies file for bench_fig13_predicted.
# This may be replaced when dependencies are built.
