#include "common/schema.h"

namespace pjvm {

Result<int> Schema::ColumnIndex(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in " + ToString());
}

bool Schema::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Status Schema::ValidateRow(const Row& row) const {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        ToString());
  }
  for (int i = 0; i < num_columns(); ++i) {
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          ValueTypeToString(columns_[i].type) + " but row has " +
          ValueTypeToString(row[i].type()) + " in " + RowToString(row));
    }
  }
  return Status::OK();
}

Schema Schema::Concat(const Schema& a, const std::string& a_prefix,
                      const Schema& b, const std::string& b_prefix) {
  std::vector<Column> cols;
  cols.reserve(a.num_columns() + b.num_columns());
  for (const Column& c : a.columns()) {
    cols.push_back(Column{a_prefix + "." + c.name, c.type});
  }
  for (const Column& c : b.columns()) {
    cols.push_back(Column{b_prefix + "." + c.name, c.type});
  }
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (int i : indices) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  out += "]";
  return out;
}

}  // namespace pjvm
