#include "exec/external_sorter.h"

#include <algorithm>
#include <cmath>

namespace pjvm {

uint64_t ExternalSorter::SortPasses(uint64_t pages) const {
  if (pages <= 1) return 1;
  // ceil(log_M(pages)), at least one pass. This matches the paper's
  // |B| log_M |B| sorting cost with the log rounded to whole passes.
  double raw = std::log(static_cast<double>(pages)) /
               std::log(static_cast<double>(memory_pages_));
  uint64_t passes = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return std::max<uint64_t>(passes, 1);
}

uint64_t ExternalSorter::SortCostPages(uint64_t pages) const {
  return pages * SortPasses(pages);
}

uint64_t ExternalSorter::Sort(std::vector<Row>* rows, int key_col) const {
  std::stable_sort(rows->begin(), rows->end(),
                   [key_col](const Row& a, const Row& b) {
                     return a[key_col] < b[key_col];
                   });
  return SortCostPages(PagesFor(rows->size()));
}

}  // namespace pjvm
