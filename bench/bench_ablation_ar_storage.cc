// Ablation: the AR storage-minimization techniques of Section 2.1.2.
//
// Uses JV2's lineitem auxiliary relation (lineitem is the wide relation:
// 5 columns, of which JV2 needs only 3). Compares the extra storage of
// (a) full-copy auxiliary relations, (b) projection-minimized ARs, (c)
// selection+projection-minimized ARs, and (d) global indexes. Also
// demonstrates AR sharing: two views on the same join attribute use one AR.

#include <cstdio>

#include "bench/bench_util.h"

namespace pjvm {
namespace {

struct Setup {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
};

Setup Build() {
  Setup s;
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 16;
  s.sys = std::make_unique<ParallelSystem>(cfg);
  TpcrConfig tpcr;
  tpcr.customers = 2000;
  LoadTpcr(s.sys.get(), GenerateTpcr(tpcr)).Check();
  s.manager = std::make_unique<ViewManager>(s.sys.get());
  return s;
}

size_t LineitemArBytes(const JoinViewDef& def) {
  Setup s = Build();
  s.manager->RegisterView(def, MaintenanceMethod::kAuxRelation).Check();
  for (const std::string& name : s.manager->ars().TableNames()) {
    if (name.find("lineitem") != std::string::npos) {
      return s.sys->TableBytes(name);
    }
  }
  return 0;
}

size_t LineitemGiBytes(const JoinViewDef& def) {
  Setup s = Build();
  s.manager->RegisterView(def, MaintenanceMethod::kGlobalIndex).Check();
  for (const std::string& name : s.manager->gis().TableNames()) {
    if (name.find("lineitem") != std::string::npos) {
      return s.sys->TableBytes(name);
    }
  }
  return 0;
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  // Full copy: SELECT * keeps every lineitem column in the AR.
  JoinViewDef full = MakeJv2();
  full.name = "JV2full";
  full.projection.clear();
  full.partition_on.reset();
  // Projection-minimized: the paper's JV2 needs orderkey, discount,
  // extendedprice of lineitem (3 of 5 columns).
  JoinViewDef projected = MakeJv2();
  // Selection+projection-minimized: only discounted items.
  JoinViewDef filtered = MakeJv2();
  filtered.name = "JV2f";
  filtered.selections = {{{"l", "discount"}, PredOp::kGt, Value{0.05}}};

  Setup base = Build();
  size_t lineitem_bytes = base.sys->TableBytes("lineitem");
  size_t full_bytes = LineitemArBytes(full);
  size_t proj_bytes = LineitemArBytes(projected);
  size_t filt_bytes = LineitemArBytes(filtered);
  size_t gi_bytes = LineitemGiBytes(projected);

  bench::PrintHeader(
      "AR storage minimization: the lineitem structure for JV2 (Sec. 2.1.2)");
  std::printf("%-38s %12zu bytes\n", "lineitem base relation", lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "full-copy AR (select *)", full_bytes,
              double(full_bytes) / lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "projected AR (paper's JV2 columns)", proj_bytes,
              double(proj_bytes) / lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "sigma+pi AR (discount > 0.05)", filt_bytes,
              double(filt_bytes) / lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "global index (same attribute)", gi_bytes,
              double(gi_bytes) / lineitem_bytes);

  bench::BenchReport report("ablation_ar_storage");
  {
    bench::JsonWriter storage;
    storage.BeginObject()
        .Key("lineitem_base_bytes").Uint(lineitem_bytes)
        .Key("full_copy_ar_bytes").Uint(full_bytes)
        .Key("projected_ar_bytes").Uint(proj_bytes)
        .Key("filtered_ar_bytes").Uint(filt_bytes)
        .Key("global_index_bytes").Uint(gi_bytes)
        .EndObject();
    report.Add("lineitem_structure", storage.str());
  }

  // Sharing: JV2 plus a second view joining lineitem on the same attribute.
  {
    Setup s = Build();
    s.manager->RegisterView(MakeJv2(), MaintenanceMethod::kAuxRelation).Check();
    size_t one_view = s.manager->ars().StorageBytes();
    size_t ar_count_before = s.manager->ars().TableNames().size();
    JoinViewDef second = MakeJv2();
    second.name = "JV2b";
    second.projection = {{"c", "custkey"}, {"l", "extendedprice"}};
    second.partition_on = ColumnRef{"c", "custkey"};
    s.manager->RegisterView(second, MaintenanceMethod::kAuxRelation).Check();
    size_t two_views = s.manager->ars().StorageBytes();
    bench::PrintHeader("AR sharing across views (Section 2.1.2)");
    std::printf("ARs after JV2 only:    %8zu bytes across %zu AR table(s)\n",
                one_view, ar_count_before);
    std::printf("ARs after JV2 + JV2b:  %8zu bytes across %zu AR table(s)\n",
                two_views, s.manager->ars().TableNames().size());
    std::printf("growth factor:         %.2fx (unshared would be ~2x)\n",
                double(two_views) / one_view);
    bench::JsonWriter sharing;
    sharing.BeginObject()
        .Key("one_view_ar_bytes").Uint(one_view)
        .Key("two_view_ar_bytes").Uint(two_views)
        .Key("ar_tables").Uint(s.manager->ars().TableNames().size())
        .Key("growth_factor").Num(double(two_views) / one_view)
        .EndObject();
    report.Add("ar_sharing", sharing.str());
  }
  report.Write();
  return 0;
}
