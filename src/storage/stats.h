#ifndef PJVM_STORAGE_STATS_H_
#define PJVM_STORAGE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table_fragment.h"

namespace pjvm {

/// \brief Cardinality statistics for one column of a fragment or table.
struct ColumnStats {
  size_t row_count = 0;
  size_t distinct_count = 0;

  /// Average number of rows per distinct value (the paper's per-tuple join
  /// fanout N when this column is a join attribute). 0 when empty.
  double AvgFanout() const {
    if (distinct_count == 0) return 0.0;
    return static_cast<double>(row_count) / static_cast<double>(distinct_count);
  }
};

/// Exact column stats computed by scanning one fragment.
ColumnStats ComputeColumnStats(const TableFragment& fragment, int column);

/// Column stats of one fragment's MVCC snapshot at `epoch` — the same
/// numbers the live overload reports for the same committed state, gathered
/// without touching the fragment (planning under mvcc_reads).
ColumnStats ComputeColumnStats(const MvccState& state, uint64_t epoch,
                               int column);

/// Merges per-fragment stats of the same column into table-level stats.
/// Distinct counts are summed, which is exact when the table is partitioned
/// on this column and an upper bound otherwise (good enough for planning).
ColumnStats MergeColumnStats(const std::vector<ColumnStats>& parts);

}  // namespace pjvm

#endif  // PJVM_STORAGE_STATS_H_
