#ifndef PJVM_STORAGE_ROW_ID_H_
#define PJVM_STORAGE_ROW_ID_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

namespace pjvm {

/// \brief Identifier of a row within one node's fragment of a table.
///
/// Local row ids are stable for the lifetime of the row: they survive other
/// rows' inserts and deletes, and a slot is recycled only once its delete is
/// past the point of rollback (autocommit deletes free immediately;
/// transactional deletes keep the slot reserved until commit so an abort can
/// restore the row at the same lrid — see HeapFile::DeleteKeepSlot).
using LocalRowId = uint64_t;

/// \brief Identifier of a row anywhere in the parallel system.
///
/// This is the paper's "global row id": the pair (data server node, local
/// row id at the node). Global index entries are lists of these.
struct GlobalRowId {
  int32_t node = -1;
  LocalRowId lrid = 0;

  friend bool operator==(const GlobalRowId& a, const GlobalRowId& b) {
    return a.node == b.node && a.lrid == b.lrid;
  }
  friend bool operator!=(const GlobalRowId& a, const GlobalRowId& b) {
    return !(a == b);
  }
  friend bool operator<(const GlobalRowId& a, const GlobalRowId& b) {
    return std::tie(a.node, a.lrid) < std::tie(b.node, b.lrid);
  }

  std::string ToString() const {
    return "(" + std::to_string(node) + ", " + std::to_string(lrid) + ")";
  }
};

struct GlobalRowIdHash {
  size_t operator()(const GlobalRowId& g) const {
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(g.node)) << 48) ^
                 g.lrid;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace pjvm

#endif  // PJVM_STORAGE_ROW_ID_H_
