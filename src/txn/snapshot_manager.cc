#include "txn/snapshot_manager.h"

#include <string>

#include "obs/metrics_registry.h"

namespace pjvm {

namespace {

Gauge* EpochLagGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("pjvm_snapshot_epoch_lag");
  return g;
}

}  // namespace

uint64_t SnapshotManager::AcquireRead() {
  std::lock_guard<std::mutex> lock(readers_mu_);
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  active_.insert(epoch);
  EpochLagGauge()->Set(static_cast<int64_t>(epoch - *active_.begin()));
  return epoch;
}

void SnapshotManager::ReleaseRead(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(readers_mu_);
  auto it = active_.find(epoch);
  if (it != active_.end()) active_.erase(it);
  uint64_t now = epoch_.load(std::memory_order_acquire);
  EpochLagGauge()->Set(static_cast<int64_t>(
      active_.empty() ? 0 : now - *active_.begin()));
}

uint64_t SnapshotManager::MinActiveEpoch() const {
  std::lock_guard<std::mutex> lock(readers_mu_);
  if (active_.empty()) return epoch_.load(std::memory_order_acquire);
  return *active_.begin();
}

uint64_t SnapshotManager::Publish(
    const std::function<void(uint64_t)>& install) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  install(next);
  // Release: a reader that sees `next` sees every delta installed above.
  epoch_.store(next, std::memory_order_release);
  return next;
}

void SnapshotManager::Fold(const std::function<void(uint64_t)>& fn) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  uint64_t watermark;
  {
    std::lock_guard<std::mutex> rlock(readers_mu_);
    uint64_t now = epoch_.load(std::memory_order_acquire);
    watermark = active_.empty() ? now : *active_.begin();
    EpochLagGauge()->Set(
        static_cast<int64_t>(active_.empty() ? 0 : now - watermark));
  }
  fn(watermark);
}

namespace {
thread_local SnapshotScope* tl_active_scope = nullptr;
}  // namespace

SnapshotScope::SnapshotScope(SnapshotManager* mgr)
    : mgr_(mgr),
      epoch_(mgr->AcquireRead()),
      prev_(tl_active_scope),
      span_("snapshot_read", "txn") {
  span_.set_detail("epoch=" + std::to_string(epoch_));
  tl_active_scope = this;
}

SnapshotScope::~SnapshotScope() {
  tl_active_scope = prev_;
  mgr_->ReleaseRead(epoch_);
}

SnapshotScope* SnapshotScope::Active() { return tl_active_scope; }

}  // namespace pjvm
