#ifndef PJVM_STORAGE_HISTOGRAM_H_
#define PJVM_STORAGE_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "storage/table_fragment.h"

namespace pjvm {

/// \brief An equi-depth histogram over one column's values.
///
/// Buckets hold roughly equal row counts, so skewed columns get narrow
/// buckets around their hot values and equality estimates stay accurate
/// where it matters. Used by the maintenance planner to estimate join
/// fanouts under skew (the flat rows/distinct average the paper's
/// statistics discussion implies is misleading for Zipfian data).
///
/// Not to be confused with the *latency* histogram in
/// obs/metrics_registry.h: that one is log2-bucketed over durations and
/// feeds p50/p95/p99 metrics; this one is a planner statistic over column
/// values.
class EquiDepthHistogram {
 public:
  /// Builds a histogram with about `num_buckets` buckets from `values`
  /// (unsorted; consumed).
  static EquiDepthHistogram Build(std::vector<Value> values, int num_buckets);

  /// Estimated number of rows whose column equals `v`: the containing
  /// bucket's rows / distinct. A value outside every bucket estimates 1 row,
  /// not 0 — the histogram proves the value was absent at build time, not
  /// that it is absent now, and a 0 makes never-seen keys look free to the
  /// delta-aware planner (and unclassifiable to the heavy/light router).
  /// Only an empty histogram (no rows at build time) estimates 0.
  double EstimateEq(const Value& v) const;

  /// Estimated number of rows with value in [lo, hi] (inclusive), assuming
  /// uniformity within buckets.
  double EstimateRange(const Value& lo, const Value& hi) const;

  size_t total_rows() const { return total_rows_; }
  size_t num_buckets() const { return buckets_.size(); }
  std::string ToString() const;

 private:
  struct Bucket {
    Value lo;
    Value hi;
    size_t rows = 0;
    size_t distinct = 0;
  };

  std::vector<Bucket> buckets_;
  size_t total_rows_ = 0;
};

/// Builds a histogram over `column` of one fragment.
EquiDepthHistogram BuildFragmentHistogram(const TableFragment& fragment,
                                          int column, int num_buckets);

}  // namespace pjvm

#endif  // PJVM_STORAGE_HISTOGRAM_H_
