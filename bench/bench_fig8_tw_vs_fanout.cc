// Reproduces Figure 8: TW of a single-tuple insert vs the number of join
// tuples generated (N), at L = 32. Shows the global index method
// interpolating between the auxiliary relation and naive methods.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/figures.h"

namespace pjvm {
namespace {

double MeasuredTw(MaintenanceMethod method, int64_t fanout) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = 32;
  sys_cfg.rows_per_page = 4;
  ParallelSystem sys(sys_cfg);
  TwoTableConfig cfg;
  cfg.b_join_keys = 50;
  cfg.fanout = fanout;
  cfg.b_clustered_on_d = false;
  LoadTwoTable(&sys, cfg).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), method).Check();
  sys.cost().Reset();
  auto report = manager.InsertRow("A", MakeDeltaA(cfg, 0));
  report.status().Check();
  double insert_w = sys.config().weights.insert;
  return sys.cost().TotalWorkload() - insert_w -
         insert_w * static_cast<double>(report->view_rows_inserted);
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  model::Figure fig = model::MakeFigure8();
  model::PrintFigure(fig, std::cout);

  bench::PrintHeader("Figure 8 measured overlay (engine, L=32)");
  std::printf("%8s %14s %14s %14s\n", "fanout", "aux_measured",
              "naive_nc_meas", "gi_nc_meas");
  model::Figure measured;
  measured.title = "Figure 8 measured overlay (engine, L=32)";
  measured.xlabel = fig.xlabel;
  measured.ylabel = fig.ylabel;
  measured.series = {{"aux_measured", {}, {}},
                     {"naive_nc_measured", {}, {}},
                     {"gi_nc_measured", {}, {}}};
  for (int64_t n : {1, 5, 10, 20, 40}) {
    double aux = MeasuredTw(MaintenanceMethod::kAuxRelation, n);
    double naive = MeasuredTw(MaintenanceMethod::kNaive, n);
    double gi = MeasuredTw(MaintenanceMethod::kGlobalIndex, n);
    std::printf("%8lld %14.1f %14.1f %14.1f\n", static_cast<long long>(n), aux,
                naive, gi);
    double ys[] = {aux, naive, gi};
    for (int s = 0; s < 3; ++s) {
      measured.series[s].xs.push_back(static_cast<double>(n));
      measured.series[s].ys.push_back(ys[s]);
    }
  }
  bench::BenchReport report("fig8_tw_vs_fanout");
  report.AddFigure("model", fig);
  report.AddFigure("measured", measured);
  report.Write();
  return 0;
}
