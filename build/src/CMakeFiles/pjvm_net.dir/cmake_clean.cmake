file(REMOVE_RECURSE
  "CMakeFiles/pjvm_net.dir/net/message.cc.o"
  "CMakeFiles/pjvm_net.dir/net/message.cc.o.d"
  "CMakeFiles/pjvm_net.dir/net/network.cc.o"
  "CMakeFiles/pjvm_net.dir/net/network.cc.o.d"
  "libpjvm_net.a"
  "libpjvm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
