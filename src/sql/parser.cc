#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace pjvm::sql {

namespace {

/// Recursive-descent parser over the lexed token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<JoinViewDef> Parse() {
    JoinViewDef def;
    PJVM_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    if (Peek().IsKeyword("JOIN")) Advance();
    PJVM_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    PJVM_ASSIGN_OR_RETURN(def.name, ExpectIdent("view name"));
    PJVM_RETURN_NOT_OK(ExpectKeyword("AS"));
    PJVM_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    PJVM_RETURN_NOT_OK(ParseSelectList(&def));
    PJVM_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PJVM_RETURN_NOT_OK(ParseFromList(&def));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      PJVM_RETURN_NOT_OK(ParseConditions(&def));
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      PJVM_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        PJVM_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        def.group_by.push_back(ref);
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (!def.aggregates.empty()) {
      // With aggregates, the plain select-list columns must be exactly the
      // GROUP BY columns (standard SQL), and they become the group key
      // rather than a projection.
      if (def.projection != def.group_by) {
        return Err(
            "aggregate query: the non-aggregate SELECT columns must match "
            "the GROUP BY list");
      }
      def.projection.clear();
    } else if (!def.group_by.empty()) {
      return Err("GROUP BY requires an aggregate in the SELECT list");
    }
    if (Peek().IsKeyword("PARTITIONED")) {
      Advance();
      PJVM_RETURN_NOT_OK(ExpectKeyword("ON"));
      PJVM_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      def.partition_on = ref;
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input");
    }
    return def;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().offset) + " ('" +
                                   Peek().text + "'): " + msg);
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Err("expected " + std::string(kw));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Err("expected " + std::string(what));
    }
    return Advance().text;
  }

  Result<ColumnRef> ParseColumnRef() {
    PJVM_ASSIGN_OR_RETURN(std::string alias, ExpectIdent("alias"));
    if (!Peek().IsSymbol(".")) {
      return Err("expected '.' after alias '" + alias + "'");
    }
    Advance();
    PJVM_ASSIGN_OR_RETURN(std::string column, ExpectIdent("column name"));
    return ColumnRef{alias, column};
  }

  Status ParseSelectList(JoinViewDef* def) {
    if (Peek().IsSymbol("*")) {
      Advance();
      return Status::OK();  // Empty projection = SELECT *.
    }
    while (true) {
      if (Peek().IsKeyword("COUNT")) {
        Advance();
        if (!Peek().IsSymbol("(")) return Err("expected '(' after COUNT");
        Advance();
        if (!Peek().IsSymbol("*")) return Err("expected COUNT(*)");
        Advance();
        if (!Peek().IsSymbol(")")) return Err("expected ')' after COUNT(*");
        Advance();
        def->aggregates.push_back(AggregateSpec{AggFn::kCount, {}});
      } else if (Peek().IsKeyword("SUM")) {
        Advance();
        if (!Peek().IsSymbol("(")) return Err("expected '(' after SUM");
        Advance();
        PJVM_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        if (!Peek().IsSymbol(")")) return Err("expected ')' after SUM column");
        Advance();
        def->aggregates.push_back(AggregateSpec{AggFn::kSum, ref});
      } else {
        PJVM_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        def->projection.push_back(ref);
      }
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList(JoinViewDef* def) {
    while (true) {
      PJVM_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      std::string alias = table;
      if (Peek().type == TokenType::kIdent) {
        alias = Advance().text;
      }
      def->bases.push_back(BaseRef{table, alias});
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<PredOp> ParsePredOp() {
    if (Peek().type != TokenType::kOperator) {
      return Err("expected comparison operator");
    }
    std::string op = Advance().text;
    if (op == "=") return PredOp::kEq;
    if (op == "<>" || op == "!=") return PredOp::kNe;
    if (op == "<") return PredOp::kLt;
    if (op == "<=") return PredOp::kLe;
    if (op == ">") return PredOp::kGt;
    if (op == ">=") return PredOp::kGe;
    return Err("unknown operator '" + op + "'");
  }

  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInt: {
        Advance();
        return Value{static_cast<int64_t>(std::strtoll(tok.text.c_str(),
                                                       nullptr, 10))};
      }
      case TokenType::kDouble: {
        Advance();
        return Value{std::strtod(tok.text.c_str(), nullptr)};
      }
      case TokenType::kString: {
        Advance();
        return Value{tok.text};
      }
      default:
        return Err("expected a literal");
    }
  }

  Status ParseConditions(JoinViewDef* def) {
    while (true) {
      PJVM_ASSIGN_OR_RETURN(ColumnRef left, ParseColumnRef());
      PJVM_ASSIGN_OR_RETURN(PredOp op, ParsePredOp());
      // Column vs column => join edge (must be equality); else selection.
      if (Peek().type == TokenType::kIdent && Peek(1).IsSymbol(".")) {
        if (op != PredOp::kEq) {
          return Err("join predicates must use '='");
        }
        PJVM_ASSIGN_OR_RETURN(ColumnRef right, ParseColumnRef());
        def->edges.push_back(JoinEdge{left, right});
      } else {
        PJVM_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
        def->selections.push_back(SelectionPred{left, op, literal});
      }
      if (!Peek().IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<JoinViewDef> ParseCreateView(const std::string& statement) {
  PJVM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(statement));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace pjvm::sql
