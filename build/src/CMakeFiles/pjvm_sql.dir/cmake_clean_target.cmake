file(REMOVE_RECURSE
  "libpjvm_sql.a"
)
