#include "exec/join_chooser.h"

#include <cmath>

namespace pjvm {

const char* JoinAlgorithmToString(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kIndexNestedLoops:
      return "INDEX_NESTED_LOOPS";
    case JoinAlgorithm::kSortMerge:
      return "SORT_MERGE";
  }
  return "UNKNOWN";
}

namespace {

uint64_t SortPasses(uint64_t pages, int memory_pages) {
  if (pages <= 1) return 1;
  double raw = std::log(static_cast<double>(pages)) /
               std::log(static_cast<double>(memory_pages));
  uint64_t passes = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return passes < 1 ? 1 : passes;
}

}  // namespace

JoinChoice ChooseLocalJoin(const JoinChoiceInput& input) {
  JoinChoice choice;
  choice.index_io =
      static_cast<double>(input.outer_tuples) * input.per_tuple_index_io;
  if (input.inner_clustered) {
    choice.sort_merge_io = static_cast<double>(input.inner_pages);
  } else {
    choice.sort_merge_io =
        static_cast<double>(input.inner_pages) *
        static_cast<double>(SortPasses(input.inner_pages, input.memory_pages));
  }
  choice.algorithm = choice.index_io <= choice.sort_merge_io
                         ? JoinAlgorithm::kIndexNestedLoops
                         : JoinAlgorithm::kSortMerge;
  return choice;
}

}  // namespace pjvm
