#include "view/maintainer.h"

#include <iterator>
#include <map>

#include "exec/join_chooser.h"
#include "exec/local_join.h"
#include "obs/trace.h"
#include "storage/stats.h"
#include "txn/snapshot_manager.h"
#include "view/merged_storage.h"

namespace pjvm {

const char* MaintenanceMethodToString(MaintenanceMethod method) {
  switch (method) {
    case MaintenanceMethod::kNaive:
      return "NAIVE";
    case MaintenanceMethod::kAuxRelation:
      return "AUX_RELATION";
    case MaintenanceMethod::kGlobalIndex:
      return "GLOBAL_INDEX";
  }
  return "UNKNOWN";
}

Result<MaintenanceReport> Maintainer::ApplyDelta(uint64_t txn, int updated_base,
                                                 const DeltaBatch& delta) {
  MaintenanceReport report;
  if (delta.inserts.empty() && delta.deletes.empty()) return report;
  // Deletions first: an update normalized to (delete old, insert new) must
  // remove the old derivations before adding the new ones. Each sign gets a
  // plan scored by its own key values.
  if (!delta.deletes.empty()) {
    PJVM_ASSIGN_OR_RETURN(MaintenancePlan plan,
                          PlanForRows(updated_base, delta.deletes));
    PJVM_RETURN_NOT_OK(ProcessSign(txn, updated_base, plan, delta.deletes,
                                   delta.delete_gids, /*is_delete=*/true,
                                   &report));
  }
  if (!delta.inserts.empty()) {
    PJVM_ASSIGN_OR_RETURN(MaintenancePlan plan,
                          PlanForRows(updated_base, delta.inserts));
    PJVM_RETURN_NOT_OK(ProcessSign(txn, updated_base, plan, delta.inserts,
                                   delta.insert_gids, /*is_delete=*/false,
                                   &report));
  }
  return report;
}

Result<MaintenancePlan> Maintainer::Plan(int updated_base) const {
  return PlanMaintenance(bound(), updated_base, [this](int base, int col) {
    return EstimateFanout(base, col);
  });
}

Result<MaintenancePlan> Maintainer::PlanForRows(
    int updated_base, const std::vector<Row>& rows) const {
  return PlanMaintenanceForDelta(
      bound(), updated_base, rows,
      [this](int base, int col) { return EstimateFanout(base, col); },
      [this](int base, int col, const Value& key) {
        return EstimateKeyFanout(base, col, key);
      });
}

double Maintainer::EstimateKeyFanout(int base, int full_col,
                                     const Value& key) const {
  const std::string& table = bound().base_def(base).name;
  double total = 0.0;
  bool any_index = false;
  if (sys_->config().mvcc_reads) {
    // Planning estimates read the last committed snapshot — no latches, so
    // estimation never stalls behind a writer. The in-flight maintenance
    // transaction's own unpublished writes are invisible here, which only
    // matters for a self-join view probing the table it just updated (the
    // estimate is then one row stale; plans for the paper's views are
    // unaffected).
    SnapshotScope scope(&sys_->snapshots());
    for (int i = 0; i < sys_->num_nodes(); ++i) {
      const TableFragment* frag = sys_->node(i)->fragment(table);
      if (frag == nullptr || !frag->mvcc_enabled()) continue;
      std::shared_ptr<const MvccState> state = frag->MvccHead();
      if (MvccFindIndex(*state, full_col) == nullptr) continue;
      any_index = true;
      total += static_cast<double>(
          MvccProbeCount(*state, scope.epoch(), full_col, key));
    }
    if (!any_index) return EstimateFanout(base, full_col);
    return total;
  }
  for (int i = 0; i < sys_->num_nodes(); ++i) {
    NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
    const TableFragment* frag = sys_->node(i)->fragment(table);
    if (frag == nullptr) continue;
    const LocalIndex* index = frag->FindIndex(full_col);
    if (index == nullptr) continue;
    any_index = true;
    const auto* list = index->tree.Find(key);
    if (list != nullptr) total += static_cast<double>(list->size());
  }
  if (!any_index) return EstimateFanout(base, full_col);
  return total;
}

double Maintainer::EstimateFanout(int base, int full_col) const {
  const std::string& table = bound().base_def(base).name;
  std::vector<ColumnStats> parts;
  if (sys_->config().mvcc_reads) {
    SnapshotScope scope(&sys_->snapshots());
    for (int i = 0; i < sys_->num_nodes(); ++i) {
      const TableFragment* frag = sys_->node(i)->fragment(table);
      if (frag == nullptr || !frag->mvcc_enabled()) continue;
      parts.push_back(
          ComputeColumnStats(*frag->MvccHead(), scope.epoch(), full_col));
    }
  } else {
    for (int i = 0; i < sys_->num_nodes(); ++i) {
      NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
      const TableFragment* frag = sys_->node(i)->fragment(table);
      if (frag != nullptr) parts.push_back(ComputeColumnStats(*frag, full_col));
    }
  }
  ColumnStats merged = MergeColumnStats(parts);
  double fanout = merged.AvgFanout();
  return fanout > 0.0 ? fanout : 1.0;
}

Result<std::vector<Maintainer::Partial>> Maintainer::SeedPartials(
    int updated_base, const std::vector<Row>& rows,
    const std::vector<GlobalRowId>& gids, int colocate_col) const {
  const TableDef& base_def = bound().base_def(updated_base);
  std::vector<Partial> seeds;
  seeds.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (!bound().RowPassesSelections(updated_base, row)) continue;
    Partial p;
    p.working.assign(bound().working_width(), Value{});
    Row part = bound().ProjectNeeded(updated_base, row);
    for (size_t j = 0; j < part.size(); ++j) {
      p.working[bound().needed_offset(updated_base) + j] = std::move(part[j]);
    }
    if (colocate_col >= 0) {
      p.node = sys_->HomeNodeForKey(row[colocate_col]);
    } else if (i < gids.size() && gids[i].node >= 0) {
      p.node = gids[i].node;
    } else if (base_def.partition.is_hash()) {
      p.node = sys_->HomeNodeForKey(row[base_def.PartitionColumn()]);
    } else {
      return Status::InvalidArgument(
          "maintainer: round-robin base '" + base_def.name +
          "' requires delta gids to locate arrival nodes");
    }
    seeds.push_back(std::move(p));
  }
  return seeds;
}

Status Maintainer::Ship(Message msg) {
  // Synchronous hop (see Network::SendAndDeliver): a Send/Poll pair would
  // race with concurrent maintenance transactions sharing the queues.
  return sys_->network().SendAndDeliver(std::move(msg)).status();
}

Result<bool> Maintainer::ResidualOk(const PlanStep& step,
                                    const Row& working) const {
  for (const BoundEdge& edge : step.residual) {
    PJVM_ASSIGN_OR_RETURN(int li,
                          bound().WorkingIndex(edge.left_base, edge.left_col));
    PJVM_ASSIGN_OR_RETURN(int ri,
                          bound().WorkingIndex(edge.right_base, edge.right_col));
    if (!(working[li] == working[ri])) return false;
  }
  return true;
}

Status Maintainer::Extend(const PlanStep& step, const Partial& partial,
                          const Row& target_needed, int at_node,
                          std::vector<Partial>* out) const {
  Partial extended;
  extended.working = partial.working;
  for (size_t j = 0; j < target_needed.size(); ++j) {
    extended.working[bound().needed_offset(step.target_base) + j] =
        target_needed[j];
  }
  PJVM_ASSIGN_OR_RETURN(bool ok, ResidualOk(step, extended.working));
  if (!ok) return Status::OK();
  extended.node = at_node;
  out->push_back(std::move(extended));
  return Status::OK();
}

Maintainer::ProbeTarget Maintainer::BaseProbeTarget(const PlanStep& step) const {
  ProbeTarget target;
  target.table = bound().base_def(step.target_base).name;
  target.probe_col = step.target_col;
  target.needed_map = bound().needed_cols(step.target_base);
  target.preds = bound().base_preds(step.target_base);
  return target;
}

Status Maintainer::ProbeGroupAtNode(uint64_t txn, const PlanStep& step,
                                    const ProbeTarget& target, int node,
                                    std::vector<const Partial*> group,
                                    int key_idx, double per_tuple_index_io,
                                    MaintenanceReport* report,
                                    std::vector<Partial>* out) {
  if (group.empty()) return Status::OK();
  Node* n = sys_->node(node);
  // The whole probe reads the fragment directly (FindIndex, num_pages, and
  // the join itself); the latch is recursive, so the nested IndexProbe /
  // SortMergeJoinFragment latches on the same node are fine.
  NodeLatchGuard latch(*n, LatchMode::kShared);
  TableFragment* frag = n->fragment(target.table);
  if (frag == nullptr) {
    return Status::NotFound("maintenance: node " + std::to_string(node) +
                            " has no fragment '" + target.table + "'");
  }
  const LocalIndex* index = frag->FindIndex(target.probe_col);

  JoinChoiceInput choice_in;
  choice_in.outer_tuples = group.size();
  choice_in.per_tuple_index_io = per_tuple_index_io;
  choice_in.inner_pages = frag->num_pages();
  choice_in.inner_clustered = index != nullptr && index->clustered;
  choice_in.memory_pages = sys_->config().sort_memory_pages;
  JoinChoice choice = ChooseLocalJoin(choice_in);
  if (index == nullptr) {
    // No index: a scan-based join is the only option.
    choice.algorithm = JoinAlgorithm::kSortMerge;
  }

  auto accept = [&](const Partial& partial, const Row& probed) -> Status {
    for (const BoundPred& bp : target.preds) {
      SelectionPred pred;
      pred.op = bp.op;
      pred.constant = bp.constant;
      if (!pred.Eval(probed[bp.col])) return Status::OK();
    }
    Row needed = ProjectRow(probed, target.needed_map);
    return Extend(step, partial, needed, node, out);
  };

  if (choice.algorithm == JoinAlgorithm::kIndexNestedLoops) {
    // Fold mode: a deferred batch is dominated by a few hot keys, so one
    // probe per distinct key serves every duplicate (that amortization is
    // the point of deferring). Eager mode probes per tuple, unmemoized, so
    // its cost accounting is unchanged.
    std::map<std::string, ProbeResult> memo;
    for (const Partial* partial : group) {
      const Value& key = partial->working[key_idx];
      const ProbeResult* probe = nullptr;
      ProbeResult fresh;
      if (fold_mode_) {
        auto [it, missing] = memo.try_emplace(key.ToString());
        if (missing) {
          PJVM_ASSIGN_OR_RETURN(
              it->second,
              n->IndexProbe(target.table, target.probe_col, key, txn));
          ++report->probes;
        }
        probe = &it->second;
      } else {
        PJVM_ASSIGN_OR_RETURN(
            fresh, n->IndexProbe(target.table, target.probe_col, key, txn));
        ++report->probes;
        probe = &fresh;
      }
      for (const Row& row : probe->rows) {
        PJVM_RETURN_NOT_OK(accept(*partial, row));
      }
    }
  } else {
    std::vector<Row> outer;
    outer.reserve(group.size());
    for (const Partial* partial : group) outer.push_back(partial->working);
    PJVM_ASSIGN_OR_RETURN(
        std::vector<JoinedPair> pairs,
        SortMergeJoinFragment(n, target.table, target.probe_col, outer, key_idx,
                              sys_->config().sort_memory_pages, &sys_->cost(),
                              txn));
    ++report->probes;
    Partial scratch;
    for (JoinedPair& pair : pairs) {
      scratch.working = std::move(pair.outer);
      scratch.node = node;
      PJVM_RETURN_NOT_OK(accept(scratch, pair.inner));
    }
  }
  return Status::OK();
}

Result<std::vector<Maintainer::Partial>> Maintainer::BroadcastStep(
    uint64_t txn, const PlanStep& step, const std::vector<Partial>& in,
    MaintenanceReport* report) {
  std::vector<Partial> out;
  if (in.empty()) return out;
  SpanGuard phase_span("broadcast_step", "phase", -1, nullptr,
                       MaintenanceMethodToString(method()));
  phase_span.set_detail(bound().base_def(step.target_base).name);
  PJVM_ASSIGN_OR_RETURN(int key_idx,
                        bound().WorkingIndex(step.source_base, step.source_col));
  // Every partial is shipped to every node: the paper's L*SEND per tuple.
  // The drain below is tagged with this transaction's id: with several
  // maintenance transactions broadcasting concurrently, a plain Poll could
  // dequeue another transaction's probe from the shared per-node queue.
  for (const Partial& p : in) {
    Message msg;
    msg.kind = MessageKind::kProbe;
    msg.table = bound().base_def(step.target_base).name;
    msg.rows.push_back(p.working);
    msg.txn_id = txn;
    PJVM_RETURN_NOT_OK(sys_->network().Broadcast(p.node, msg));
    for (int node = 0; node < sys_->num_nodes(); ++node) {
      sys_->network().PollTxn(node, txn);
    }
  }
  ProbeTarget target = BaseProbeTarget(step);
  const TableDef& tdef = bound().base_def(step.target_base);
  const std::string& col_name = tdef.schema.column(step.target_col).name;
  bool clustered = tdef.HasClusteredIndexOn(col_name);
  double fan = EstimateFanout(step.target_base, step.target_col);
  double per_tuple =
      1.0 + (clustered ? 0.0 : fan / static_cast<double>(sys_->num_nodes()));
  std::vector<const Partial*> group;
  group.reserve(in.size());
  for (const Partial& p : in) group.push_back(&p);
  // Every node probes its own fragment on its worker thread. Outputs and
  // probe counts land in per-node buffers and merge in node order, so the
  // result is identical to the former sequential node loop.
  std::vector<std::vector<Partial>> node_out(sys_->num_nodes());
  std::vector<MaintenanceReport> node_rep(sys_->num_nodes());
  PJVM_RETURN_NOT_OK(sys_->executor().RunOnAllNodes([&](int node) {
    SpanGuard span("probe_node", "task", node, &sys_->cost(),
                   MaintenanceMethodToString(method()));
    return ProbeGroupAtNode(txn, step, target, node, group, key_idx, per_tuple,
                            &node_rep[node], &node_out[node]);
  }));
  for (int node = 0; node < sys_->num_nodes(); ++node) {
    *report += node_rep[node];
    out.insert(out.end(), std::make_move_iterator(node_out[node].begin()),
               std::make_move_iterator(node_out[node].end()));
  }
  return out;
}

Result<std::vector<Maintainer::Partial>> Maintainer::RoutedStep(
    uint64_t txn, const PlanStep& step, const ProbeTarget& target,
    const std::vector<Partial>& in, MaintenanceReport* report) {
  std::vector<Partial> out;
  if (in.empty()) return out;
  SpanGuard phase_span("routed_step", "phase", -1, nullptr,
                       MaintenanceMethodToString(method()));
  phase_span.set_detail(target.table);
  PJVM_ASSIGN_OR_RETURN(int key_idx,
                        bound().WorkingIndex(step.source_base, step.source_col));
  std::map<int, std::vector<const Partial*>> by_dest;
  for (const Partial& p : in) {
    int dest = sys_->HomeNodeForKey(p.working[key_idx]);
    if (dest != p.node) {
      Message msg;
      msg.kind = MessageKind::kProbe;
      msg.from = p.node;
      msg.to = dest;
      msg.table = target.table;
      msg.rows.push_back(p.working);
      PJVM_RETURN_NOT_OK(Ship(std::move(msg)));
    }
    by_dest[dest].push_back(&p);
  }
  std::vector<int> dests;
  dests.reserve(by_dest.size());
  for (const auto& [dest, group] : by_dest) dests.push_back(dest);
  // Each destination probes its fragment on its own worker. The probed
  // structure is partitioned (and clustered) on the join attribute: one
  // search per tuple, no extra fetches. Merging in ascending destination
  // order reproduces the former map-iteration loop.
  std::vector<std::vector<Partial>> dest_out(sys_->num_nodes());
  std::vector<MaintenanceReport> dest_rep(sys_->num_nodes());
  PJVM_RETURN_NOT_OK(sys_->executor().RunOnNodes(dests, [&](int dest) {
    SpanGuard span("probe_node", "task", dest, &sys_->cost(),
                   MaintenanceMethodToString(method()));
    return ProbeGroupAtNode(txn, step, target, dest,
                            std::move(by_dest.find(dest)->second), key_idx,
                            /*per_tuple_index_io=*/1.0, &dest_rep[dest],
                            &dest_out[dest]);
  }));
  for (int dest : dests) {
    *report += dest_rep[dest];
    out.insert(out.end(), std::make_move_iterator(dest_out[dest].begin()),
               std::make_move_iterator(dest_out[dest].end()));
  }
  return out;
}

Result<std::vector<Maintainer::Partial>> Maintainer::MergedRoutedStep(
    uint64_t txn, const PlanStep& step, MergedViewStorage* merged,
    const std::vector<Partial>& in, MaintenanceReport* report) {
  std::vector<Partial> out;
  if (in.empty()) return out;
  SpanGuard phase_span("merged_routed_step", "phase", -1, nullptr,
                       MaintenanceMethodToString(method()));
  phase_span.set_detail(merged->lock_table());
  PJVM_ASSIGN_OR_RETURN(int key_idx,
                        bound().WorkingIndex(step.source_base, step.source_col));
  // Same routing as RoutedStep: one SEND per partial not already at its
  // key's hash home. The merged tree holds every cluster member's rows for
  // that key at that node, so the probe itself never leaves the range.
  std::map<int, std::vector<const Partial*>> by_dest;
  for (const Partial& p : in) {
    int dest = sys_->HomeNodeForKey(p.working[key_idx]);
    if (dest != p.node) {
      Message msg;
      msg.kind = MessageKind::kProbe;
      msg.from = p.node;
      msg.to = dest;
      msg.table = merged->lock_table();
      msg.rows.push_back(p.working);
      PJVM_RETURN_NOT_OK(Ship(std::move(msg)));
    }
    by_dest[dest].push_back(&p);
  }
  std::vector<int> dests;
  dests.reserve(by_dest.size());
  for (const auto& [dest, group] : by_dest) dests.push_back(dest);
  std::vector<std::vector<Partial>> dest_out(sys_->num_nodes());
  std::vector<MaintenanceReport> dest_rep(sys_->num_nodes());
  PJVM_RETURN_NOT_OK(sys_->executor().RunOnNodes(dests, [&](int dest) {
    SpanGuard span("probe_node", "task", dest, &sys_->cost(),
                   MaintenanceMethodToString(method()));
    for (const Partial* partial : by_dest.find(dest)->second) {
      ++dest_rep[dest].probes;
      PJVM_RETURN_NOT_OK(merged->ProbeMember(
          txn, dest, step.target_base, step.target_col,
          partial->working[key_idx],
          [&](const Row& needed) {
            return Extend(step, *partial, needed, dest, &dest_out[dest]);
          }));
    }
    return Status::OK();
  }));
  for (int dest : dests) {
    *report += dest_rep[dest];
    out.insert(out.end(), std::make_move_iterator(dest_out[dest].begin()),
               std::make_move_iterator(dest_out[dest].end()));
  }
  return out;
}

Status Maintainer::EmitToView(uint64_t txn,
                              const std::vector<Partial>& completed,
                              bool is_delete, MaintenanceReport* report) {
  // Group by producing node: one routing batch per producer, matching the
  // paper's "the join tuples are sent to node k" per generating node.
  std::map<int, std::vector<Row>> by_producer;
  for (const Partial& p : completed) {
    by_producer[p.node].push_back(bound().OutputRow(p.working));
  }
  for (auto& [producer, rows] : by_producer) {
    size_t applied = 0;
    PJVM_RETURN_NOT_OK(
        view_->ApplyOutputs(txn, producer, std::move(rows), is_delete, &applied));
    if (is_delete) {
      report->view_rows_deleted += applied;
    } else {
      report->view_rows_inserted += applied;
    }
  }
  return Status::OK();
}

}  // namespace pjvm
