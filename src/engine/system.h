#ifndef PJVM_ENGINE_SYSTEM_H_
#define PJVM_ENGINE_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "engine/node.h"
#include "engine/partitioner.h"
#include "net/network.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace pjvm {

/// \brief Construction parameters for a parallel system.
struct SystemConfig {
  /// The paper's L: number of data server nodes.
  int num_nodes = 4;
  /// Rows per heap page (drives page counts, hence sort-merge costs).
  int rows_per_page = 64;
  /// Unit costs for SEARCH / FETCH / INSERT / SEND.
  CostWeights weights;
  /// Memory budget in pages for external sorts (the paper's M).
  int sort_memory_pages = 100;
  /// Run fan-out phases (SelectEq/SelectRange/ScanAll broadcasts, InsertMany,
  /// the maintainers' probe phases) on one worker thread per node, so
  /// per-node work proceeds in real parallelism and wall-clock time tracks
  /// the paper's response time (max over nodes) rather than TW. When false
  /// the same code paths run inline in the caller's thread, in node order —
  /// cost accounting and results are identical either way (tested).
  bool parallel_execution = true;
  /// Simulated device latency in nanoseconds per weighted I/O unit charged
  /// (0 = off). See CostTracker::SetIoStallNanos.
  uint64_t io_stall_ns = 0;
  /// Strict two-phase locking. Explicit transactions then take X locks on
  /// the index keys and rows they write and S locks on the keys they probe,
  /// released at commit/abort. Autocommit operations are not locked (they
  /// are atomic by themselves).
  bool enable_locking = false;
  /// Conflict handling when locking is enabled. kWaitDie (default) parks an
  /// older requester until the conflict clears and kills a younger one;
  /// kNoWait is the legacy abort-on-conflict policy (kept for comparison —
  /// see bench_contention).
  LockPolicy lock_policy = LockPolicy::kWaitDie;
  /// Upper bound on one blocking lock wait under kWaitDie; expiry aborts
  /// the requester. Values <= 0 disable waiting (wait-die degenerates to
  /// no-wait with ordered kills).
  int lock_wait_timeout_ms = 500;
  /// Maximum attempts for one maintenance transaction in
  /// ViewManager::ApplyDelta (>= 1): aborted attempts (wait-die kills,
  /// timeouts, no-wait conflicts) are retried with exponential backoff
  /// until this budget is exhausted.
  int maintain_max_attempts = 8;
  /// Base backoff before attempt k+1: base * 2^(k-1) microseconds, with
  /// uniform jitter in [0, base) to break retry convoys.
  int maintain_retry_base_us = 100;
  /// Number of independent lock-table shards (per-shard mutex + condvars).
  /// All locks of one (node, table) fragment share a shard, so acquires and
  /// release-wakeups on disjoint fragments never contend. 1 = the legacy
  /// single-mutex table (the contention bench's baseline mode).
  int lock_shards = 16;
  /// Key-lock count per (transaction, fragment) at which the lock manager
  /// escalates the transaction's key locks on that fragment to one
  /// fragment-granularity lock — bulk maintenance trades key-level
  /// concurrency for a bounded lock table. 0 disables escalation.
  int lock_escalation_threshold = 256;
  /// Reader/writer node latches: read-only phases (probes, estimation
  /// scans, view lookups) take shared access and overlap per node; false
  /// restores the exclusive-only latch for baseline comparisons.
  bool rw_latches = true;
  /// Lock-free MVCC snapshot reads. When on, every fragment keeps an
  /// epoch-versioned copy-on-write snapshot (storage/mvcc.h): writers
  /// install versions under their existing X locks and publish them
  /// atomically at commit epoch, and the client read operators (SelectEq /
  /// SelectRange / ScanAll / RowCount, MaterializedView::Contents, the
  /// maintainers' planning estimates) read the snapshot at a pinned epoch —
  /// zero key locks, zero node latches, wait-free. Off (the default) is
  /// today's latch/lock read path, kept as the A/B baseline; single-threaded
  /// runs charge bit-identical costs either way.
  bool mvcc_reads = false;
  /// Simulated WAL force (fsync) latency in nanoseconds; 0 = forcing is
  /// free and appends are durable immediately (the default, and the
  /// behavior of every non-contention experiment). Wall-clock sleep only —
  /// never charged to the CostTracker.
  uint64_t wal_force_ns = 0;
  /// Batch concurrent WAL forces behind a per-node group-commit leader
  /// (only meaningful when wal_force_ns > 0). false = every committing
  /// transaction pays its own serialized force.
  bool group_commit = true;
  /// How long a group-commit leader holds the force open so concurrent
  /// committers' appends can join its round.
  int group_commit_window_us = 100;
  /// Heavy/light skew-adaptive maintenance (view/heavy_light.h). When on,
  /// ViewManager classifies each delta row by the estimated join fanout of
  /// its key values (equi-depth histograms over the neighbour columns):
  /// light rows take the normal eager per-tuple AR/GI/naive path, heavy rows
  /// are buffered in a per-(view, base) deferred delta and folded in batch —
  /// amortizing the hot-key probes and view writes, and cancelling
  /// insert/delete churn before it ever touches the view. Folding restores
  /// the eagerly-maintained contents exactly (tested byte-for-byte).
  /// Routing and folds are serialized per ViewManager; the scalable
  /// concurrent write path is heavy_light = off.
  bool heavy_light = false;
  /// Promotion threshold for the classifier: a delta row is heavy when some
  /// incident join edge's neighbour column matches the row's key with
  /// estimated fanout >= heavy_key_threshold x that column's average fanout.
  /// Demotion happens at half this ratio (hysteresis), so a key oscillating
  /// at the boundary does not thrash between regimes.
  double heavy_key_threshold = 4.0;
  /// Buffered heavy-delta rows per view at which a fold is triggered
  /// automatically (checked after each maintenance transaction commits).
  /// Folds also run when a delta arrives on a *different* base of the view
  /// (the deferral invariant requires it), on CheckAllConsistent, and on
  /// FoldAllDeferred. <= 0 folds only on those events.
  int deferred_fold_rows = 64;
  /// Maintenance operations (delta rows) applied to a table since its
  /// statistics were built at which the classifier's per-fragment equi-depth
  /// histograms for that table are rebuilt. 0 = build once and never refresh
  /// (the pre-fix behavior: a sustained skewed stream leaves the classifier
  /// scoring yesterday's distribution). Only consulted when heavy_light is
  /// on.
  int stats_refresh_ops = 1024;
  /// Merged co-clustered storage for the AR method (view/merged_storage.h,
  /// leanstore's MergedAdapter idiom). When on, each eligible AR-maintained
  /// view registers a per-node B+-tree whose composite key
  /// (join_key, source_tag, source_pk) interleaves the co-partitioned base
  /// rows, the foreign AR rows, and the view tuples for that join key; the
  /// cluster members then carry NO per-structure indexes, and a maintenance
  /// delta becomes one range descent plus in-range edits under one
  /// fragment-range lock instead of probes and key locks across several
  /// B+-trees. View contents are fingerprint-identical to the separate
  /// layout (tested); heap tables stay the recovery/MVCC source of truth and
  /// the merged structure is rebuilt from them in RecoverViews.
  bool merged_ar_storage = false;
  /// Escrow (value-lock) maintenance of aggregate join views
  /// (view/escrow.h). When on, eligible COUNT(*)/SUM views maintained
  /// immediately under locking route their group increments through a
  /// per-(node, view, group) escrow journal: concurrent maintenance
  /// transactions hold compatible V locks on the same group's index key and
  /// increment it in place, instead of serializing on X locks — the hot-key
  /// aggregate scaling `bench_contention escrow` measures. Group birth and
  /// death (the non-commutative edges) escalate V→X. Off (the default) is
  /// byte-for-byte the eager delete+insert path.
  bool escrow_aggregates = false;
  /// Turns on the global Tracer for this system's lifetime. Also switched on
  /// by the PJVM_TRACE environment variable ("1", or an output path).
  bool trace_enabled = false;
  /// Where the system exports the Chrome trace on destruction; empty = no
  /// export. A path-valued PJVM_TRACE sets this too.
  std::string trace_path;
};

/// \brief Transaction lifecycle hook for subsystems that keep per-txn side
/// state outside the WAL/undo machinery (the escrow journal, view/escrow.h).
///
/// The system invokes the hook from every commit and abort path, so an
/// implementation is covered no matter which caller drives the transaction
/// (the ViewManager retry loop, deferred folds, recompute-and-diff):
///
///  - OnPrepare: inside Commit, right after the transaction enters
///    kPreparing and before the participants' prepare records are forced —
///    appended WAL records are covered by those forces.
///  - OnCommitFold: the commit point. With mvcc_reads it runs inside the
///    snapshot publish critical section and its returned version ops are
///    installed at the transaction's commit epoch, atomically with the
///    heap-written ops; without MVCC it runs at the same program point.
///  - OnCommitFinalize: after the fold (and publish), before locks are
///    released — the last chance to rewrite heap rows under the
///    transaction's own locks.
///  - OnAbort: inside Abort, before undo/ReleaseAll — side state must be
///    rolled back before a successor can acquire the released locks.
class TxnHook {
 public:
  virtual ~TxnHook() = default;
  /// True if the hook has any state for `txn_id` (gates the commit calls).
  virtual bool HasPending(uint64_t txn_id) const = 0;
  virtual Status OnPrepare(uint64_t txn_id) = 0;
  virtual std::vector<TxnVersionOp> OnCommitFold(uint64_t txn_id) = 0;
  virtual Status OnCommitFinalize(uint64_t txn_id) = 0;
  virtual void OnAbort(uint64_t txn_id) = 0;
};

/// \brief The shared-nothing parallel RDBMS: L nodes, an interconnect, a
/// catalog, a transaction coordinator, and a cost meter.
///
/// This is the substrate the paper assumes. It executes real partitioned
/// storage and real index maintenance while charging the cost model's
/// primitive operations, so experiments read both correct data and the
/// I/O/message counts the paper's analysis is about.
class ParallelSystem {
 public:
  explicit ParallelSystem(SystemConfig config);
  /// Joins the per-node worker threads before any node state is torn down.
  ~ParallelSystem();

  ParallelSystem(const ParallelSystem&) = delete;
  ParallelSystem& operator=(const ParallelSystem&) = delete;

  int num_nodes() const { return config_.num_nodes; }
  const SystemConfig& config() const { return config_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  CostTracker& cost() { return cost_; }
  Network& network() { return network_; }
  TxnManager& txns() { return txns_; }
  LockManager& locks() { return locks_; }
  SnapshotManager& snapshots() const { return snapshots_; }
  Node* node(int i) { return nodes_[i].get(); }
  const Node* node(int i) const { return nodes_[i].get(); }
  /// The thread-per-node executor running this system's fan-out phases.
  NodeExecutor& executor() const { return *executor_; }

  /// Registers a table and creates its (empty) fragment on every node.
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);

  /// Adds a secondary index to an existing table (catalog + every node's
  /// fragment, backfilling from current rows). No-op if an index on the
  /// column already exists.
  Status CreateIndexOn(const std::string& table, const std::string& column,
                       bool clustered);

  /// The node that owns `row` of `def` (hash partitioning), or the next
  /// round-robin node. Deterministic given insertion order.
  int HomeNodeForRow(const TableDef& def, const Row& row);
  /// The node owning `key` under hash partitioning on any column.
  int HomeNodeForKey(const Value& key) const {
    return NodeForKey(key, config_.num_nodes);
  }

  /// Inserts a row into its home node. No SEND is charged for the client →
  /// home-node hop (the paper's flows start with the tuple already at its
  /// node i).
  Status Insert(const std::string& table, Row row,
                uint64_t txn_id = kAutoCommitTxnId);
  /// Batch insert: rows are validated and assigned their home nodes up
  /// front (so round-robin placement matches per-row Insert calls exactly),
  /// then each node's rows are inserted by that node's worker, in batch
  /// order. On any failure nothing further is guaranteed beyond per-node
  /// prefix application; the first failing node's (in node order) status is
  /// returned.
  Status InsertMany(const std::string& table, const std::vector<Row>& rows,
                    uint64_t txn_id = kAutoCommitTxnId);
  /// InsertMany that also reports each row's global row id, in input order.
  Result<std::vector<GlobalRowId>> InsertManyReturningIds(
      const std::string& table, const std::vector<Row>& rows,
      uint64_t txn_id = kAutoCommitTxnId);
  /// Insert that reports where the row landed — the paper's global row id.
  Result<GlobalRowId> InsertReturningId(const std::string& table, Row row,
                                        uint64_t txn_id = kAutoCommitTxnId);

  /// Global row id of one row equal to `row`, without modifying anything
  /// (charges one SEARCH at each probed node).
  Result<GlobalRowId> LocateExact(const std::string& table, const Row& row);

  /// Deletes one instance of `row` from its home node (hash partitioning)
  /// or searches all nodes (round-robin).
  Status DeleteExact(const std::string& table, const Row& row,
                     uint64_t txn_id = kAutoCommitTxnId);

  /// All rows of `table` across all nodes (no cost charged; test utility).
  std::vector<Row> ScanAll(const std::string& table) const;
  size_t RowCount(const std::string& table) const;
  /// Heap bytes of `table` plus any storage overlays registered against it
  /// (a view's merged co-clustered tree reports its bytes on the owning
  /// view's storage line — see SetStorageOverlay).
  size_t TableBytes(const std::string& table) const;
  size_t TablePages(const std::string& table) const;

  /// Attributes extra storage to `table`'s TableBytes line: `bytes_fn` is
  /// invoked (unlatched — it must synchronize itself) on every TableBytes
  /// call for that table. Used by the merged storage layer so the ablation's
  /// byte counts stay honest about where the co-clustered tree's pages live.
  void SetStorageOverlay(const std::string& table,
                         std::function<size_t()> bytes_fn);
  void ClearStorageOverlay(const std::string& table);

  /// Rows with `column` = `key`. Routed to the single owning node when
  /// `column` is the partitioning column, otherwise fanned out to all nodes
  /// through the interconnect; costs are charged accordingly.
  ///
  /// With `mvcc_reads` on the read runs against an epoch snapshot — no key
  /// locks, no node latches — and `txn_id` is ignored. Otherwise an explicit
  /// `txn_id` takes the paper's S locks (index-key locks on a probe, a
  /// fragment S lock on a scan) and the fan-out runs inline on the calling
  /// thread so those acquires may block (executor workers must not).
  Result<std::vector<Row>> SelectEq(const std::string& table,
                                    const std::string& column,
                                    const Value& key,
                                    uint64_t txn_id = kAutoCommitTxnId);

  /// Rows with `column` in [lo, hi] (inclusive). Hash partitioning cannot
  /// route ranges, so every node is consulted: a B+-tree range scan where an
  /// index exists (one SEARCH to seek plus one FETCH per row delivered), a
  /// full scan (one FETCH per page) otherwise. Locking/snapshot behavior of
  /// `txn_id` as in SelectEq (an explicit transaction S-locks the whole
  /// fragment — coarse, but phantom-safe for ranges).
  Result<std::vector<Row>> SelectRange(const std::string& table,
                                       const std::string& column,
                                       const Value& lo, const Value& hi,
                                       uint64_t txn_id = kAutoCommitTxnId);

  // --- Transactions (two-phase commit over the touched nodes) ---

  uint64_t Begin() { return txns_.Begin(); }
  /// Runs 2PC: PREPARE at each participant, durable coordinator decision,
  /// COMMIT at each participant. Honors injected failure points; on an
  /// injected crash the transaction's fate is decided by what reached the
  /// logs, exactly as in recovery.
  Status Commit(uint64_t txn_id);
  /// Rolls back by applying compensating actions in reverse order.
  Status Abort(uint64_t txn_id);

  // --- Crash / recovery ---

  /// Durably snapshots every node's fragments and truncates the WALs, so
  /// recovery replays only post-checkpoint work. Refused while any
  /// transaction is in flight.
  Status Checkpoint();

  /// Simulates losing all volatile state (fragments) on every node; the
  /// WALs, checkpoints, and the coordinator's decision log survive.
  /// In-flight transactions become aborted (presumed abort).
  void Crash();
  /// Rebuilds every fragment by replaying committed transactions from each
  /// node's WAL. Derived global-index tables contain row ids that are not
  /// stable across recovery; callers that maintain GIs rebuild them after
  /// this (see ViewManager::RebuildGlobalIndexes).
  Status Recover();

  /// Structural invariants on every node.
  Status CheckInvariants() const;

  /// Registers (or clears, with nullptr) the transaction lifecycle hook.
  /// One hook at most; the escrow journal registers itself here. The owner
  /// must clear it before being destroyed.
  void SetTxnHook(TxnHook* hook) { txn_hook_ = hook; }
  TxnHook* txn_hook() const { return txn_hook_; }

 private:
  /// Publishes a committed transaction's buffered version ops (one delta
  /// per written fragment, all at one epoch) and piggybacks version GC.
  void PublishVersions(uint64_t txn_id);
  /// Rebuilds every listed table's snapshot from its live fragments at a
  /// fresh epoch (recovery, index DDL — quiescent points).
  void ResetSnapshots(const std::vector<std::string>& tables);

  SystemConfig config_;
  Catalog catalog_;
  CostTracker cost_;
  TxnManager txns_;
  LockManager locks_;
  // Mutable: const read entry points (ScanAll, RowCount) pin read epochs.
  mutable SnapshotManager snapshots_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Round-robin placement counters, bumped by every client thread routing a
  // row — guarded, unlike the rest of the catalog, because placement happens
  // on the hot write path.
  std::mutex round_robin_mu_;
  std::map<std::string, uint64_t> round_robin_;
  // Storage overlays (table -> extra-bytes callback); guarded for the same
  // reason as round_robin_ — registration and reads can race.
  mutable std::mutex overlay_mu_;
  std::map<std::string, std::function<size_t()>> storage_overlays_;
  /// Transaction lifecycle hook (escrow journal); see SetTxnHook.
  TxnHook* txn_hook_ = nullptr;
  // Declared last: destroyed (joined) first, while nodes are still alive.
  std::unique_ptr<NodeExecutor> executor_;
};

}  // namespace pjvm

#endif  // PJVM_ENGINE_SYSTEM_H_
