#ifndef PJVM_TXN_WAL_H_
#define PJVM_TXN_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace pjvm {

/// \brief Kind of a write-ahead-log record.
enum class LogRecordType {
  kInsert = 0,
  kDelete,
  kPrepare,
  kCommit,
  kAbort,
  /// Logical escrow increment on one aggregate group row (view/escrow.h):
  /// `row` is the group prefix followed by per-column deltas, `aux` is the
  /// group-prefix width. Appended once per (view, group) at prepare time —
  /// the in-place heap edits themselves are not logged — and replayed by
  /// adding the deltas to the stored group row found by prefix match.
  kEscrowDelta,
};

const char* LogRecordTypeToString(LogRecordType type);

/// \brief One durable log record on one node.
///
/// Data records identify rows by content rather than by row id so that
/// replay is insensitive to row-id recycling (aborted transactions consume
/// ids on the live path but are skipped during replay).
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kInsert;
  std::string table;
  Row row;
  /// Record-type-specific extra: for kEscrowDelta, the group-prefix width
  /// (how many leading columns of `row` identify the group). 0 otherwise.
  int aux = 0;

  std::string ToString() const;
};

/// \brief A per-node write-ahead log.
///
/// Appends are durable immediately (the simulated failure model loses all
/// in-memory table state but never the log). Recovery replays, in order, the
/// data records of transactions the coordinator decided to commit.
///
/// **LSN semantics: monotonic across the log's whole lifetime.** `Clear()`
/// (checkpoint truncation) drops the records but never resets `next_lsn_`,
/// so an LSN uniquely identifies one append forever — records written after
/// a checkpoint can never alias pre-checkpoint LSNs that might still be
/// referenced by diagnostics or recovery bookkeeping.
///
/// Append/size/Clear/Force are internally synchronized: parallel write
/// fan-outs append from node-executor workers while client threads run
/// autocommit operations. `records()`/`ReplayCommitted` return/iterate the
/// underlying vector without copying and are for quiescent callers only
/// (recovery, checkpoint, tests) — no appends may be in flight.
///
/// **Forcing and group commit.** A configurable simulated force cost
/// (`ConfigureForce`) splits durability in two: Append makes a record
/// *logged*, Force makes every record up to an LSN *durable* (advances the
/// `durable_lsn()` watermark after sleeping the simulated device time —
/// wall clock only, never charged to the CostTracker). With group commit
/// enabled, concurrent Force calls elect a leader per round: the leader
/// holds the force for `group_commit_window_us` to accumulate more appends,
/// then forces once up to the newest LSN; followers park on the force
/// condition variable until the leader's round covers their LSN, so N
/// concurrent commits pay ~1 force instead of N. With group commit disabled
/// every Force runs its own device sleep, serialized — the contention
/// bench's per-txn-force baseline. With `force_ns == 0` (the default)
/// appends are durable immediately and Force is free, which is the
/// pre-group-commit behavior all non-contention tests rely on.
///
/// The simulated crash (`DiscardUnforced`) drops records above the durable
/// watermark, modeling the loss of an unforced log tail. Note autocommit
/// appends are only covered once some later force advances the watermark
/// past them; crash tests drive explicit transactions, whose 2PC prepare
/// forces cover all their data records.
class Wal {
 public:
  /// Appends a record, assigning its LSN. Returns the LSN.
  uint64_t Append(LogRecord record);

  /// Simulated force cost per device write (`force_ns` of wall-clock sleep,
  /// never charged to cost counters), group-commit leader election on/off,
  /// and the leader's accumulation window. force_ns == 0 restores
  /// durable-on-append semantics.
  void ConfigureForce(uint64_t force_ns, bool group_commit, int window_us) {
    std::lock_guard<std::mutex> lock(mu_);
    force_ns_ = force_ns;
    group_commit_ = group_commit;
    window_us_ = window_us;
  }

  /// Blocks until every record with LSN ≤ `lsn` is durable (clamped to the
  /// last assigned LSN). May force the log itself (leader) or ride a
  /// concurrent leader's force (follower).
  Status Force(uint64_t lsn);

  /// Test seam: invoked (with the log unlocked) by a group-commit leader
  /// right after it opens its accumulation window and before the device
  /// write. Whatever the hook appends or triggers is guaranteed to be inside
  /// the round — the deterministic replacement for "sleep and hope the
  /// window is still open" in timing tests. Not for production use.
  void set_window_hook(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    window_hook_ = std::move(hook);
  }

  /// Highest LSN guaranteed to survive DiscardUnforced.
  uint64_t durable_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_lsn_;
  }

  /// Simulated crash of the log device's volatile tail: drops every record
  /// newer than the durable watermark. No-op when forcing is free.
  void DiscardUnforced();

  const std::vector<LogRecord>& records() const { return records_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  /// The LSN the next append will receive; never decreases (see above).
  uint64_t next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// Visits data records (insert/delete) of transactions for which
  /// `is_committed(txn_id)` is true, in log order.
  void ReplayCommitted(const std::function<bool(uint64_t)>& is_committed,
                       const std::function<void(const LogRecord&)>& apply) const;

  /// Truncates the checkpointed prefix of the record list. LSNs stay
  /// monotonic: the next append continues from where the pre-truncation log
  /// left off. A checkpoint may only declare durable what it *made* durable:
  /// when forcing is not free and the tail above `durable_lsn()` has never
  /// been forced, Clear pays one device force for it (riding out any
  /// in-flight group-commit round first) before advancing the watermark —
  /// silently advancing would launder a volatile tail into "durable" and a
  /// later DiscardUnforced crash would keep state the device never had.
  /// Counted in `pjvm_wal_checkpoint_forces`.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;

  // Force/group-commit state, all under mu_.
  uint64_t durable_lsn_ = 0;
  uint64_t force_ns_ = 0;
  bool group_commit_ = true;
  int window_us_ = 100;
  bool force_in_progress_ = false;
  /// Force calls that joined since the current round's leader was elected;
  /// becomes the round's recorded batch size.
  uint64_t round_requests_ = 0;
  std::condition_variable force_cv_;
  /// Test seam; see set_window_hook.
  std::function<void()> window_hook_;
};

}  // namespace pjvm

#endif  // PJVM_TXN_WAL_H_
