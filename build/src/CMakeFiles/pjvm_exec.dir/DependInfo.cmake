
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/external_sorter.cc" "src/CMakeFiles/pjvm_exec.dir/exec/external_sorter.cc.o" "gcc" "src/CMakeFiles/pjvm_exec.dir/exec/external_sorter.cc.o.d"
  "/root/repo/src/exec/join_chooser.cc" "src/CMakeFiles/pjvm_exec.dir/exec/join_chooser.cc.o" "gcc" "src/CMakeFiles/pjvm_exec.dir/exec/join_chooser.cc.o.d"
  "/root/repo/src/exec/local_join.cc" "src/CMakeFiles/pjvm_exec.dir/exec/local_join.cc.o" "gcc" "src/CMakeFiles/pjvm_exec.dir/exec/local_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
