// Ablation: the hybrid cost-based method chooser the paper's conclusion
// sketches ("our analytical model could form the basis for a cost model
// that would enable a system to choose the best approach automatically").
//
// Sweeps transaction size and storage budget, prints the advisor's choice
// and the model's per-method total workload, and spot-checks the advice
// against the measured engine at three representative points.

#include <cstdio>

#include "bench/bench_util.h"
#include "view/hybrid_advisor.h"

namespace pjvm {
namespace {

double MeasuredTw(MaintenanceMethod method, int txn_tuples) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = 8;
  sys_cfg.rows_per_page = 4;
  ParallelSystem sys(sys_cfg);
  TwoTableConfig cfg;
  cfg.b_join_keys = 800;
  cfg.fanout = 4;
  LoadTwoTable(&sys, cfg).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), method).Check();
  std::vector<Row> batch;
  for (int64_t i = 0; i < txn_tuples; ++i) batch.push_back(MakeDeltaA(cfg, i));
  sys.cost().Reset();
  manager.ApplyDelta(DeltaBatch::Inserts("A", batch)).status().Check();
  return sys.cost().TotalWorkload();
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  WorkloadProfile base;
  base.num_nodes = 8;
  base.fanout = 4;
  base.other_relation_pages = 800;
  base.memory_pages = 100;
  base.base_clustered_on_join = true;
  base.ar_bytes = 80000;
  base.gi_bytes = 20000;

  bench::PrintHeader("Advisor sweep: txn size x storage budget (L=8, N=4)");
  std::printf("%10s %12s | %10s %10s %10s | %s\n", "txn_tuples", "budget",
              "naive_tw", "aux_tw", "gi_tw", "choice");
  bench::BenchReport report("ablation_hybrid");
  bench::JsonWriter sweep;
  sweep.BeginArray();
  for (double tuples : {1.0, 16.0, 128.0, 1024.0, 8192.0}) {
    for (double budget : {0.0, 40000.0, 200000.0}) {
      WorkloadProfile p = base;
      p.tuples_per_txn = tuples;
      p.storage_budget_bytes = budget;
      Advice advice = ChooseMethod(p);
      std::printf("%10.0f %12.0f | %10.1f %10.1f %10.1f | %s\n", tuples,
                  budget, advice.naive_io, advice.aux_io, advice.gi_io,
                  MaintenanceMethodToString(advice.method));
      sweep.BeginObject()
          .Key("txn_tuples").Num(tuples)
          .Key("storage_budget_bytes").Num(budget)
          .Key("naive_io").Num(advice.naive_io)
          .Key("aux_io").Num(advice.aux_io)
          .Key("gi_io").Num(advice.gi_io)
          .Key("choice").Str(MaintenanceMethodToString(advice.method))
          .EndObject();
    }
  }
  sweep.EndArray();
  report.Add("advisor_sweep", sweep.str());

  bench::PrintHeader("Advice vs measured engine TW (budget unconstrained)");
  std::printf("%10s %14s %14s %14s | advice\n", "txn_tuples", "naive_meas",
              "aux_meas", "gi_meas");
  bench::JsonWriter spot;
  spot.BeginArray();
  for (int tuples : {1, 64, 2048}) {
    WorkloadProfile p = base;
    p.tuples_per_txn = tuples;
    p.storage_budget_bytes = 1e12;
    Advice advice = ChooseMethod(p);
    double naive = MeasuredTw(MaintenanceMethod::kNaive, tuples);
    double aux = MeasuredTw(MaintenanceMethod::kAuxRelation, tuples);
    double gi = MeasuredTw(MaintenanceMethod::kGlobalIndex, tuples);
    std::printf("%10d %14.1f %14.1f %14.1f | %s\n", tuples, naive, aux, gi,
                MaintenanceMethodToString(advice.method));
    spot.BeginObject()
        .Key("txn_tuples").Int(tuples)
        .Key("naive_measured_tw").Num(naive)
        .Key("aux_measured_tw").Num(aux)
        .Key("gi_measured_tw").Num(gi)
        .Key("advice").Str(MaintenanceMethodToString(advice.method))
        .EndObject();
  }
  spot.EndArray();
  report.Add("advice_vs_measured", spot.str());
  report.Write();
  return 0;
}
