#ifndef PJVM_MODEL_ANALYTICAL_H_
#define PJVM_MODEL_ANALYTICAL_H_

#include <cstdint>

namespace pjvm::model {

/// \brief Parameters of the paper's analytical model (Section 3.1).
struct ModelParams {
  /// L: number of data server nodes.
  int num_nodes = 8;
  /// N: join tuples generated per inserted tuple.
  double fanout = 10.0;
  /// |B|: pages of the other base relation.
  double b_pages = 6400.0;
  /// M: sort memory in pages.
  int memory_pages = 100;
  /// Unit costs in I/Os (the paper's simplification).
  double search = 1.0;
  double fetch = 1.0;
  double insert = 2.0;

  /// K = min(N, L): nodes holding matches for one tuple.
  double K() const;
  /// |B_i| = ceil(|B| / L): pages of B at each node.
  double BPagesPerNode() const;
};

/// ceil(log_M(pages)), at least 1 — passes of an external sort.
double SortPasses(double pages, int memory_pages);

// --- Total workload (TW) per inserted tuple, Section 3.1.1. SEND terms are
// --- excluded from the I/O metric, exactly as the paper does ("we only
// --- consider the time spent on SEARCH, FETCH, and INSERT").

/// AR method: INSERT + SEARCH (+ 2 SENDs).
double TwAuxRelation(const ModelParams& p);
/// Naive: L*SEARCH + (N*FETCH if J_B non-clustered) (+ (L+K) SENDs).
double TwNaive(const ModelParams& p, bool clustered_index);
/// GI: INSERT + SEARCH + (K or N)*FETCH (+ (1+2K) SENDs).
double TwGlobalIndex(const ModelParams& p, bool distributed_clustered);

/// SEND messages per inserted tuple (for completeness / message metrics).
double SendsAuxRelation(const ModelParams& p);
double SendsNaive(const ModelParams& p);
double SendsGlobalIndex(const ModelParams& p);

// --- Response time (max per-node I/Os) for a transaction inserting
// --- `a_tuples`, Section 3.1.2. Each *Rt function returns the min of the
// --- index-nested-loops and sort-merge variants; the components are also
// --- exposed for the crossover analyses.

double RtAuxIndex(const ModelParams& p, double a_tuples);
double RtAuxSortMerge(const ModelParams& p, double a_tuples);
double RtAux(const ModelParams& p, double a_tuples);

double RtNaiveIndex(const ModelParams& p, double a_tuples, bool clustered);
double RtNaiveSortMerge(const ModelParams& p, double a_tuples, bool clustered);
double RtNaive(const ModelParams& p, double a_tuples, bool clustered);

double RtGiIndex(const ModelParams& p, double a_tuples,
                 bool distributed_clustered);
double RtGiSortMerge(const ModelParams& p, double a_tuples,
                     bool distributed_clustered);
double RtGi(const ModelParams& p, double a_tuples, bool distributed_clustered);

// --- Total workload for an `a_tuples` transaction (sum over nodes), the
// --- paper's throughput-oriented metric. For the AR and GI methods the work
// --- is concentrated on few nodes (TW = per-tuple TW * A under index plans);
// --- the naive method keeps every node busy (TW = L * Rt). Each takes the
// --- min with its sort-merge variant.

double TwBatchAux(const ModelParams& p, double a_tuples);
double TwBatchNaive(const ModelParams& p, double a_tuples, bool clustered);
double TwBatchGi(const ModelParams& p, double a_tuples,
                 bool distributed_clustered);

}  // namespace pjvm::model

#endif  // PJVM_MODEL_ANALYTICAL_H_
