file(REMOVE_RECURSE
  "libpjvm_net.a"
)
