#ifndef PJVM_VIEW_NAIVE_MAINTAINER_H_
#define PJVM_VIEW_NAIVE_MAINTAINER_H_

#include "view/maintainer.h"

namespace pjvm {

/// \brief The paper's naive method (Section 2.1.1).
///
/// Each plan step probes the raw base table. When the target base happens to
/// be partitioned on the join attribute (case 1), each partial is routed to
/// the single owning node; otherwise (case 2) each partial is broadcast to
/// all L nodes — the expensive all-node operation the other methods avoid.
/// No extra storage is used.
class NaiveMaintainer : public Maintainer {
 public:
  using Maintainer::Maintainer;

  MaintenanceMethod method() const override {
    return MaintenanceMethod::kNaive;
  }

 protected:
  Status ProcessSign(uint64_t txn, int updated_base,
                     const MaintenancePlan& plan, const std::vector<Row>& rows,
                     const std::vector<GlobalRowId>& gids, bool is_delete,
                     MaintenanceReport* report) override;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_NAIVE_MAINTAINER_H_
