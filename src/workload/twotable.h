#ifndef PJVM_WORKLOAD_TWOTABLE_H_
#define PJVM_WORKLOAD_TWOTABLE_H_

#include <cstdint>

#include "engine/system.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief The uniform two-relation setup of the paper's analytical model
/// experiments (Section 3.1/3.2):
///
/// A(a, c, e) partitioned on a — the updated relation; join attribute c.
/// B(b, d, f) partitioned on b — the probed relation; join attribute d with
/// exactly `fanout` (the paper's N) rows per key value, uniformly
/// distributed on d (the paper's assumption 9).
///
/// Neither relation is partitioned on the join attribute, matching the
/// model's standing assumption, and B carries an index on d that is
/// clustered or not per `b_clustered_on_d` (the J_B variants).
struct TwoTableConfig {
  int64_t b_join_keys = 100;
  int64_t fanout = 10;
  bool b_clustered_on_d = true;
  uint64_t seed = 7;
};

/// Creates and loads A (empty) and B (b_join_keys * fanout rows) in `sys`.
Status LoadTwoTable(ParallelSystem* sys, const TwoTableConfig& config);

/// The i-th delta tuple for A: key i, join attribute uniform over B's keys.
Row MakeDeltaA(const TwoTableConfig& config, int64_t i);

/// The model's JV = A x B on c = d, partitioned on an attribute of A.
JoinViewDef MakeModelView();

}  // namespace pjvm

#endif  // PJVM_WORKLOAD_TWOTABLE_H_
