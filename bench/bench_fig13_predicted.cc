// Reproduces Figure 13: the analytical model's *predicted* view maintenance
// time for JV1 (customer x orders) and JV2 (+ lineitem) under the naive and
// auxiliary relation methods, for 2/4/8 data server nodes and 128 inserted
// customer tuples — the prediction the paper validates against Teradata in
// Figure 14. (The paper scales its y-axis by a constant, "the time unit is
// 128 I/Os"; we print raw per-node I/Os, so only ratios are comparable.)

#include <cstdio>
#include <iostream>

#include "model/figures.h"

int main() {
  using namespace pjvm::model;
  PrintFigure(MakeFigure13(), std::cout);

  TpcrExperimentParams p;
  std::printf("\nspeedup of AR over naive (predicted):\n");
  std::printf("%8s %12s %12s\n", "nodes", "JV1", "JV2");
  for (int l : {2, 4, 8}) {
    std::printf("%8d %11.1fx %11.1fx\n", l,
                PredictJv1(l, p, false) / PredictJv1(l, p, true),
                PredictJv2(l, p, false) / PredictJv2(l, p, true));
  }
  return 0;
}
