# Empty compiler generated dependencies file for pjvm_engine.
# This may be replaced when dependencies are built.
