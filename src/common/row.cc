#include "common/row.h"

namespace pjvm {

uint64_t HashRow(const Row& row) {
  // Combine per-value hashes with a boost::hash_combine-style mixer so that
  // permutations of the same values hash differently.
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (row.size() * 0x100000001b3ULL);
  for (const Value& v : row) {
    uint64_t x = v.Hash();
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

Row ProjectRow(const Row& row, const std::vector<int>& indices) {
  Row out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(row[i]);
  return out;
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

size_t RowByteSize(const Row& row) {
  size_t n = 0;
  for (const Value& v : row) n += v.ByteSize();
  return n;
}

}  // namespace pjvm
