file(REMOVE_RECURSE
  "libpjvm_common.a"
)
