#ifndef PJVM_STORAGE_BTREE_H_
#define PJVM_STORAGE_BTREE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace pjvm {

/// \brief An in-memory B+-tree from Value keys to posting lists of T.
///
/// This single structure backs every index in the system:
///  - local non-clustered indexes (T = LocalRowId),
///  - local clustered indexes (T = LocalRowId; clustering is a property of
///    the owning fragment, see TableFragment),
///  - global index fragments (T = GlobalRowId, the paper's
///    "(value, list of global row ids)" entries).
///
/// Duplicate keys are stored as one leaf entry whose posting list holds all
/// items for that key, matching the paper's assumption that all matches for
/// a key live in one index entry (and, for clustered indexes, on one page).
///
/// The tree is not thread-safe and needs no locks: under the thread-per-node
/// executor every node's indexes are touched only by that node's worker
/// thread (single-writer-per-node; see DESIGN.md "Execution model"), so
/// isolation still holds by construction.
template <typename T>
class BPlusTree {
 public:
  using PostingList = std::vector<T>;

  /// `max_keys` is the fanout bound per node (leaf and internal); nodes split
  /// when they exceed it and merge/borrow when they fall below half.
  explicit BPlusTree(int max_keys = 64) : max_keys_(max_keys) {
    root_ = NewLeaf();
    first_leaf_ = static_cast<Leaf*>(root_.get());
  }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Adds `item` to the posting list of `key` (creating the entry if new).
  void Insert(const Value& key, const T& item) {
    InsertRec(root_.get(), key, item);
    if (NumKeys(root_.get()) > static_cast<size_t>(max_keys_)) SplitRoot();
  }

  /// Removes one occurrence of `item` from `key`'s posting list. Returns
  /// NotFound if the key or the item is absent. Erases the key entirely when
  /// its posting list becomes empty.
  Status Remove(const Value& key, const T& item) {
    Leaf* leaf = FindLeaf(key);
    int pos = LowerBound(leaf->keys, key);
    if (pos >= static_cast<int>(leaf->keys.size()) || leaf->keys[pos] != key) {
      return Status::NotFound("B+tree: key " + key.ToString() + " not present");
    }
    PostingList& list = leaf->lists[pos];
    auto it = std::find(list.begin(), list.end(), item);
    if (it == list.end()) {
      return Status::NotFound("B+tree: item not in posting list of key " +
                              key.ToString());
    }
    list.erase(it);
    --item_count_;
    if (list.empty()) EraseKey(key);
    return Status::OK();
  }

  /// Posting list for `key`, or nullptr if absent. The pointer is invalidated
  /// by any mutation.
  const PostingList* Find(const Value& key) const {
    const Leaf* leaf = FindLeaf(key);
    int pos = LowerBound(leaf->keys, key);
    if (pos >= static_cast<int>(leaf->keys.size()) || leaf->keys[pos] != key) {
      return nullptr;
    }
    return &leaf->lists[pos];
  }

  bool Contains(const Value& key) const { return Find(key) != nullptr; }

  /// Visits every (key, item) pair with key in [lo, hi], in key order.
  /// Returning false from the callback stops the scan.
  void ScanRange(const Value& lo, const Value& hi,
                 const std::function<bool(const Value&, const T&)>& fn) const {
    const Leaf* leaf = FindLeaf(lo);
    int pos = LowerBound(leaf->keys, lo);
    while (leaf != nullptr) {
      for (; pos < static_cast<int>(leaf->keys.size()); ++pos) {
        if (hi < leaf->keys[pos]) return;
        for (const T& item : leaf->lists[pos]) {
          if (!fn(leaf->keys[pos], item)) return;
        }
      }
      leaf = leaf->next;
      pos = 0;
    }
  }

  /// Visits every (key, posting list) entry in key order.
  void ForEachEntry(
      const std::function<bool(const Value&, const PostingList&)>& fn) const {
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!fn(leaf->keys[i], leaf->lists[i])) return;
      }
    }
  }

  /// Number of distinct keys.
  size_t num_keys() const { return key_count_; }
  /// Total number of stored items across all posting lists.
  size_t num_items() const { return item_count_; }
  bool empty() const { return item_count_ == 0; }

  int height() const {
    int h = 1;
    const NodeBase* n = root_.get();
    while (!n->is_leaf) {
      n = static_cast<const Internal*>(n)->children[0].get();
      ++h;
    }
    return h;
  }

  /// Structural self-check: key ordering within and across nodes, fanout
  /// bounds, leaf chain consistency, and counter agreement. For tests.
  Status CheckInvariants() const {
    size_t keys_seen = 0;
    size_t items_seen = 0;
    const Value* prev = nullptr;
    Status st = CheckNode(root_.get(), nullptr, nullptr, /*is_root=*/true);
    if (!st.ok()) return st;
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (prev != nullptr && !(*prev < leaf->keys[i])) {
          return Status::Internal("B+tree: leaf chain keys out of order at " +
                                  leaf->keys[i].ToString());
        }
        if (leaf->lists[i].empty()) {
          return Status::Internal("B+tree: empty posting list for key " +
                                  leaf->keys[i].ToString());
        }
        prev = &leaf->keys[i];
        ++keys_seen;
        items_seen += leaf->lists[i].size();
      }
    }
    if (keys_seen != key_count_) {
      return Status::Internal("B+tree: key_count_ " + std::to_string(key_count_) +
                              " != scanned " + std::to_string(keys_seen));
    }
    if (items_seen != item_count_) {
      return Status::Internal("B+tree: item_count_ " +
                              std::to_string(item_count_) + " != scanned " +
                              std::to_string(items_seen));
    }
    return Status::OK();
  }

 private:
  struct NodeBase {
    bool is_leaf;
    std::vector<Value> keys;
    explicit NodeBase(bool leaf) : is_leaf(leaf) {}
    virtual ~NodeBase() = default;
  };

  struct Leaf : NodeBase {
    std::vector<PostingList> lists;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
    Leaf() : NodeBase(true) {}
  };

  struct Internal : NodeBase {
    // children.size() == keys.size() + 1; keys[i] is the smallest key in
    // children[i + 1]'s subtree.
    std::vector<std::unique_ptr<NodeBase>> children;
    Internal() : NodeBase(false) {}
  };

  static int LowerBound(const std::vector<Value>& keys, const Value& key) {
    return static_cast<int>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  }
  static int UpperBound(const std::vector<Value>& keys, const Value& key) {
    return static_cast<int>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  static size_t NumKeys(const NodeBase* n) { return n->keys.size(); }

  std::unique_ptr<NodeBase> NewLeaf() { return std::make_unique<Leaf>(); }

  Leaf* FindLeaf(const Value& key) const {
    NodeBase* n = root_.get();
    while (!n->is_leaf) {
      Internal* in = static_cast<Internal*>(n);
      int pos = UpperBound(in->keys, key);
      n = in->children[pos].get();
    }
    return static_cast<Leaf*>(n);
  }
  const Leaf* FindLeafConst(const Value& key) const { return FindLeaf(key); }

  // Inserts into the subtree rooted at `n`; the caller handles a root split.
  void InsertRec(NodeBase* n, const Value& key, const T& item) {
    if (n->is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(n);
      int pos = LowerBound(leaf->keys, key);
      if (pos < static_cast<int>(leaf->keys.size()) && leaf->keys[pos] == key) {
        leaf->lists[pos].push_back(item);
      } else {
        leaf->keys.insert(leaf->keys.begin() + pos, key);
        leaf->lists.insert(leaf->lists.begin() + pos, PostingList{item});
        ++key_count_;
      }
      ++item_count_;
      return;
    }
    Internal* in = static_cast<Internal*>(n);
    int pos = UpperBound(in->keys, key);
    NodeBase* child = in->children[pos].get();
    InsertRec(child, key, item);
    if (NumKeys(child) > static_cast<size_t>(max_keys_)) {
      SplitChild(in, pos);
    }
  }

  // Splits in->children[pos] (which overflowed) into two siblings.
  void SplitChild(Internal* parent, int pos) {
    NodeBase* child = parent->children[pos].get();
    if (child->is_leaf) {
      Leaf* left = static_cast<Leaf*>(child);
      auto right_owned = std::make_unique<Leaf>();
      Leaf* right = right_owned.get();
      size_t mid = left->keys.size() / 2;
      right->keys.assign(left->keys.begin() + mid, left->keys.end());
      right->lists.assign(std::make_move_iterator(left->lists.begin() + mid),
                          std::make_move_iterator(left->lists.end()));
      left->keys.resize(mid);
      left->lists.resize(mid);
      right->next = left->next;
      right->prev = left;
      if (right->next != nullptr) right->next->prev = right;
      left->next = right;
      parent->keys.insert(parent->keys.begin() + pos, right->keys.front());
      parent->children.insert(parent->children.begin() + pos + 1,
                              std::move(right_owned));
    } else {
      Internal* left = static_cast<Internal*>(child);
      auto right_owned = std::make_unique<Internal>();
      Internal* right = right_owned.get();
      size_t mid = left->keys.size() / 2;
      Value up = left->keys[mid];
      right->keys.assign(left->keys.begin() + mid + 1, left->keys.end());
      right->children.assign(
          std::make_move_iterator(left->children.begin() + mid + 1),
          std::make_move_iterator(left->children.end()));
      left->keys.resize(mid);
      left->children.resize(mid + 1);
      parent->keys.insert(parent->keys.begin() + pos, up);
      parent->children.insert(parent->children.begin() + pos + 1,
                              std::move(right_owned));
    }
  }

  void SplitRoot() {
    auto new_root = std::make_unique<Internal>();
    new_root->children.push_back(std::move(root_));
    SplitChild(new_root.get(), 0);
    root_ = std::move(new_root);
  }

  // Erases a key whose posting list is empty. Rebalancing strategy: remove
  // from the leaf; if the leaf underflows, borrow from or merge with a
  // sibling, recursively fixing parents.
  void EraseKey(const Value& key) {
    EraseRec(root_.get(), key);
    --key_count_;
    // Shrink the root if it became a pass-through internal node.
    while (!root_->is_leaf && root_->keys.empty()) {
      Internal* in = static_cast<Internal*>(root_.get());
      root_ = std::move(in->children[0]);
    }
    if (root_->is_leaf) first_leaf_ = static_cast<Leaf*>(root_.get());
  }

  void EraseRec(NodeBase* n, const Value& key) {
    if (n->is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(n);
      int pos = LowerBound(leaf->keys, key);
      leaf->keys.erase(leaf->keys.begin() + pos);
      leaf->lists.erase(leaf->lists.begin() + pos);
      return;
    }
    Internal* in = static_cast<Internal*>(n);
    int pos = UpperBound(in->keys, key);
    NodeBase* child = in->children[pos].get();
    EraseRec(child, key);
    if (NumKeys(child) < 1 ||
        (!child->is_leaf &&
         static_cast<Internal*>(child)->children.size() < 2)) {
      FixUnderflow(in, pos);
    }
    // A delete (or the rebalance it triggered) may have changed the smallest
    // key under any child of `in`; recompute all separators. This is
    // O(fanout x height) per delete, which is fine for an in-memory tree.
    for (size_t i = 1; i < in->children.size(); ++i) {
      const Value* smallest = SmallestKey(in->children[i].get());
      if (smallest != nullptr) in->keys[i - 1] = *smallest;
    }
  }

  static const Value* SmallestKey(const NodeBase* n) {
    while (!n->is_leaf) {
      n = static_cast<const Internal*>(n)->children[0].get();
    }
    const Leaf* leaf = static_cast<const Leaf*>(n);
    if (leaf->keys.empty()) return nullptr;
    return &leaf->keys.front();
  }

  // Merges or borrows for in->children[pos] after an underflow.
  void FixUnderflow(Internal* parent, int pos) {
    NodeBase* child = parent->children[pos].get();
    // Prefer borrowing from the right sibling, then left; otherwise merge.
    if (pos + 1 < static_cast<int>(parent->children.size())) {
      NodeBase* right = parent->children[pos + 1].get();
      if (NumKeys(right) > 1) {
        BorrowFromRight(parent, pos);
        return;
      }
      MergeWithRight(parent, pos);
      return;
    }
    if (pos > 0) {
      NodeBase* left = parent->children[pos - 1].get();
      if (NumKeys(left) > 1) {
        BorrowFromLeft(parent, pos);
        return;
      }
      MergeWithRight(parent, pos - 1);
      return;
    }
    (void)child;
  }

  void BorrowFromRight(Internal* parent, int pos) {
    NodeBase* child = parent->children[pos].get();
    NodeBase* right = parent->children[pos + 1].get();
    if (child->is_leaf) {
      Leaf* l = static_cast<Leaf*>(child);
      Leaf* r = static_cast<Leaf*>(right);
      l->keys.push_back(r->keys.front());
      l->lists.push_back(std::move(r->lists.front()));
      r->keys.erase(r->keys.begin());
      r->lists.erase(r->lists.begin());
      parent->keys[pos] = r->keys.front();
    } else {
      Internal* l = static_cast<Internal*>(child);
      Internal* r = static_cast<Internal*>(right);
      l->keys.push_back(parent->keys[pos]);
      l->children.push_back(std::move(r->children.front()));
      parent->keys[pos] = r->keys.front();
      r->keys.erase(r->keys.begin());
      r->children.erase(r->children.begin());
    }
  }

  void BorrowFromLeft(Internal* parent, int pos) {
    NodeBase* child = parent->children[pos].get();
    NodeBase* left = parent->children[pos - 1].get();
    if (child->is_leaf) {
      Leaf* c = static_cast<Leaf*>(child);
      Leaf* l = static_cast<Leaf*>(left);
      c->keys.insert(c->keys.begin(), l->keys.back());
      c->lists.insert(c->lists.begin(), std::move(l->lists.back()));
      l->keys.pop_back();
      l->lists.pop_back();
      parent->keys[pos - 1] = c->keys.front();
    } else {
      Internal* c = static_cast<Internal*>(child);
      Internal* l = static_cast<Internal*>(left);
      c->keys.insert(c->keys.begin(), parent->keys[pos - 1]);
      c->children.insert(c->children.begin(), std::move(l->children.back()));
      parent->keys[pos - 1] = l->keys.back();
      l->keys.pop_back();
      l->children.pop_back();
    }
  }

  // Merges children[pos] and children[pos + 1] into children[pos].
  void MergeWithRight(Internal* parent, int pos) {
    NodeBase* child = parent->children[pos].get();
    NodeBase* right = parent->children[pos + 1].get();
    if (child->is_leaf) {
      Leaf* l = static_cast<Leaf*>(child);
      Leaf* r = static_cast<Leaf*>(right);
      l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
      for (auto& pl : r->lists) l->lists.push_back(std::move(pl));
      l->next = r->next;
      if (l->next != nullptr) l->next->prev = l;
    } else {
      Internal* l = static_cast<Internal*>(child);
      Internal* r = static_cast<Internal*>(right);
      l->keys.push_back(parent->keys[pos]);
      l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
      for (auto& c : r->children) l->children.push_back(std::move(c));
    }
    parent->keys.erase(parent->keys.begin() + pos);
    parent->children.erase(parent->children.begin() + pos + 1);
  }

  Status CheckNode(const NodeBase* n, const Value* lo, const Value* hi,
                   bool is_root) const {
    if (!is_root && n->keys.empty()) {
      return Status::Internal("B+tree: non-root node with no keys");
    }
    if (n->keys.size() > static_cast<size_t>(max_keys_)) {
      return Status::Internal("B+tree: node exceeds max_keys");
    }
    for (size_t i = 0; i + 1 < n->keys.size(); ++i) {
      if (!(n->keys[i] < n->keys[i + 1])) {
        return Status::Internal("B+tree: node keys out of order");
      }
    }
    for (const Value& k : n->keys) {
      if (lo != nullptr && k < *lo) {
        return Status::Internal("B+tree: key below subtree lower bound");
      }
      if (hi != nullptr && !(k < *hi)) {
        return Status::Internal("B+tree: key at/above subtree upper bound");
      }
    }
    if (!n->is_leaf) {
      const Internal* in = static_cast<const Internal*>(n);
      if (in->children.size() != in->keys.size() + 1) {
        return Status::Internal("B+tree: internal child count mismatch");
      }
      for (size_t i = 0; i < in->children.size(); ++i) {
        const Value* clo = (i == 0) ? lo : &in->keys[i - 1];
        const Value* chi = (i == in->keys.size()) ? hi : &in->keys[i];
        Status st =
            CheckNode(in->children[i].get(), clo, chi, /*is_root=*/false);
        if (!st.ok()) return st;
      }
    }
    return Status::OK();
  }

  int max_keys_;
  std::unique_ptr<NodeBase> root_;
  Leaf* first_leaf_ = nullptr;
  size_t key_count_ = 0;
  size_t item_count_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_STORAGE_BTREE_H_
