#include "exec/local_join.h"

#include <algorithm>
#include <unordered_map>

#include "exec/external_sorter.h"

namespace pjvm {

Result<std::vector<JoinedPair>> IndexNestedLoopJoin(
    Node* node, const std::string& table, int inner_col,
    const std::vector<Row>& outer, int outer_col, uint64_t txn_id) {
  std::vector<JoinedPair> out;
  for (const Row& o : outer) {
    PJVM_ASSIGN_OR_RETURN(
        ProbeResult probe,
        node->IndexProbe(table, inner_col, o[outer_col], txn_id));
    for (Row& match : probe.rows) {
      out.push_back(JoinedPair{o, std::move(match)});
    }
  }
  return out;
}

Result<std::vector<JoinedPair>> SortMergeJoinFragment(
    Node* node, const std::string& table, int inner_col,
    const std::vector<Row>& outer, int outer_col, int memory_pages,
    CostTracker* tracker, uint64_t txn_id) {
  TableFragment* frag = node->fragment(table);
  if (frag == nullptr) {
    return Status::NotFound("sort-merge: node " + std::to_string(node->id()) +
                            " has no fragment '" + table + "'");
  }
  // A scan reads the whole fragment: one shared fragment lock. The lock (which
  // may block) comes before the physical latch that covers the reads below.
  PJVM_RETURN_NOT_OK(node->AcquireTableShared(txn_id, table));
  NodeLatchGuard latch(*node, LatchMode::kShared);
  const LocalIndex* index = frag->FindIndex(inner_col);
  bool inner_sorted = index != nullptr && index->clustered;

  ExternalSorter sorter(memory_pages, frag->heap().rows_per_page());
  uint64_t inner_pages = frag->num_pages();
  uint64_t io = inner_sorted ? inner_pages : sorter.SortCostPages(inner_pages);
  tracker->ChargeIOPages(node->id(), io);

  // Execute the join with a hash table on the (in-memory) outer side; the
  // result is identical to a merge and the cost was charged above.
  std::unordered_map<Value, std::vector<const Row*>, ValueHash> outer_index;
  for (const Row& o : outer) outer_index[o[outer_col]].push_back(&o);

  std::vector<JoinedPair> out;
  frag->ForEach([&](LocalRowId, const Row& inner) {
    auto it = outer_index.find(inner[inner_col]);
    if (it != outer_index.end()) {
      for (const Row* o : it->second) {
        out.push_back(JoinedPair{*o, inner});
      }
    }
    return true;
  });
  // Deterministic output order: by outer tuple then inner key.
  return out;
}

}  // namespace pjvm
