#include "engine/node.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/metrics_registry.h"

namespace pjvm {

namespace {

// Process-wide latch acquisition counters. The snapshot-isolation tests
// assert these stay flat across a reader window with mvcc_reads on — the
// measurable form of "readers take no latches".
Counter* LatchSharedCounter() {
  static Counter* c = MetricsRegistry::Global().counter("pjvm_node_latch_shared");
  return c;
}

Counter* LatchExclusiveCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("pjvm_node_latch_exclusive");
  return c;
}

// MVCC version bookkeeping: live chain deltas across all fragments, and
// deltas reclaimed by folds.
Gauge* VersionsLiveGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("pjvm_mvcc_versions_live");
  return g;
}

Counter* GcReclaimedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("pjvm_mvcc_gc_reclaimed");
  return c;
}

struct SharedDepthEntry {
  const NodeLatch* latch;
  int depth;
};

// Per-thread shared hold depths, one entry per latch this thread currently
// holds shared. A handful at most (one per node touched), so linear scan.
thread_local std::vector<SharedDepthEntry> tls_shared_depths;

}  // namespace

int& NodeLatch::SharedDepth(const NodeLatch* latch) {
  for (SharedDepthEntry& e : tls_shared_depths) {
    if (e.latch == latch) return e.depth;
  }
  tls_shared_depths.push_back({latch, 0});
  return tls_shared_depths.back().depth;
}

int NodeLatch::SharedDepthOf(const NodeLatch* latch) {
  for (const SharedDepthEntry& e : tls_shared_depths) {
    if (e.latch == latch) return e.depth;
  }
  return 0;
}

void NodeLatch::DropSharedDepth(const NodeLatch* latch) {
  for (size_t i = 0; i < tls_shared_depths.size(); ++i) {
    if (tls_shared_depths[i].latch == latch) {
      tls_shared_depths[i] = tls_shared_depths.back();
      tls_shared_depths.pop_back();
      return;
    }
  }
}

void NodeLatch::AcquireShared() const {
  LatchSharedCounter()->Increment();
  if (!rw_enabled_) {
    AcquireExclusive();
    return;
  }
  if (writer_.load(std::memory_order_acquire) == std::this_thread::get_id()) {
    // Exclusive subsumes shared: deepen the existing exclusive hold.
    std::lock_guard<std::mutex> lock(mu_);
    ++writer_depth_;
    return;
  }
  int& depth = SharedDepth(this);
  std::unique_lock<std::mutex> lock(mu_);
  if (depth > 0) {
    // Nested shared: the outer hold already excludes writers, so skip the
    // waiting-writer gate (blocking here would deadlock against writer
    // priority).
    ++readers_;
    ++depth;
    return;
  }
  cv_.wait(lock,
           [this] { return writer_depth_ == 0 && waiting_writers_ == 0; });
  ++readers_;
  depth = 1;
}

void NodeLatch::ReleaseShared() const {
  if (!rw_enabled_) {
    ReleaseExclusive();
    return;
  }
  if (writer_.load(std::memory_order_acquire) == std::this_thread::get_id()) {
    ReleaseExclusive();
    return;
  }
  int& depth = SharedDepth(this);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --readers_;
    --depth;
    if (readers_ == 0) cv_.notify_all();
  }
  if (depth == 0) DropSharedDepth(this);
}

void NodeLatch::AcquireExclusive() const {
  LatchExclusiveCounter()->Increment();
  const std::thread::id me = std::this_thread::get_id();
  if (writer_.load(std::memory_order_acquire) == me) {
    std::lock_guard<std::mutex> lock(mu_);
    ++writer_depth_;
    return;
  }
  if (rw_enabled_ && SharedDepthOf(this) > 0) {
    // A shared→exclusive upgrade deadlocks against a symmetric upgrader;
    // no engine call path performs one, so treat it as a programming error.
    std::fprintf(stderr,
                 "NodeLatch: shared->exclusive upgrade attempted; aborting\n");
    std::abort();
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  cv_.wait(lock, [this] { return readers_ == 0 && writer_depth_ == 0; });
  --waiting_writers_;
  writer_depth_ = 1;
  writer_.store(me, std::memory_order_release);
}

void NodeLatch::ReleaseExclusive() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (--writer_depth_ == 0) {
    writer_.store(std::thread::id{}, std::memory_order_release);
    cv_.notify_all();
  }
}

Status Node::CreateFragment(const TableDef& def, int rows_per_page) {
  if (fragments_.count(def.name) > 0) {
    return Status::AlreadyExists("node " + std::to_string(id_) +
                                 " already has fragment '" + def.name + "'");
  }
  auto frag = std::make_unique<TableFragment>(def.schema, rows_per_page);
  frag->EnableRowLookup();
  for (const IndexSpec& idx : def.indexes) {
    PJVM_ASSIGN_OR_RETURN(int col, def.schema.ColumnIndex(idx.column));
    PJVM_RETURN_NOT_OK(frag->CreateIndex(col, idx.clustered));
  }
  if (snaps_ != nullptr) frag->EnableMvcc(snaps_->current_epoch());
  fragments_.emplace(def.name, std::move(frag));
  kinds_[def.name] = def.kind;
  return Status::OK();
}

CostTracker::WriteKind Node::WriteKindOf(const std::string& table) const {
  auto it = kinds_.find(table);
  if (it == kinds_.end()) return CostTracker::WriteKind::kBase;
  switch (it->second) {
    case TableKind::kBase:
      return CostTracker::WriteKind::kBase;
    case TableKind::kAuxiliary:
    case TableKind::kGlobalIndex:
      return CostTracker::WriteKind::kStructure;
    case TableKind::kView:
      return CostTracker::WriteKind::kView;
  }
  return CostTracker::WriteKind::kBase;
}

void Node::RecordVersionOp(uint64_t txn_id, const std::string& table,
                           TableFragment* frag, MvccOp::Kind kind, Row row) {
  MvccOp op;
  op.kind = kind;
  op.row = std::move(row);
  op.pages_after = frag->num_pages();
  op.rows_after = frag->num_rows();
  if (txn_id != kAutoCommitTxnId) {
    txns_->PushVersionOp(txn_id, TxnVersionOp{id_, table, std::move(op)});
    return;
  }
  // Autocommit: the write is already durable (WAL append above) and there
  // is no 2PC decision to wait for, so publish right away. Publishing under
  // the node latch is safe: the publish path takes no latches (lock order
  // latch -> publish_mu_).
  std::vector<MvccOp> ops;
  ops.push_back(std::move(op));
  snaps_->Publish(
      [&](uint64_t epoch) { frag->MvccPublish(epoch, std::move(ops)); });
  VersionsLiveGauge()->Add(1.0);
  snaps_->Fold([&](uint64_t watermark) {
    size_t folded = frag->MvccMaybeFold(watermark);
    if (folded > 0) {
      VersionsLiveGauge()->Add(-static_cast<double>(folded));
      GcReclaimedCounter()->Increment(folded);
    }
  });
}

Status Node::DropFragment(const std::string& table) {
  kinds_.erase(table);
  auto it = fragments_.find(table);
  if (it != fragments_.end() && snaps_ != nullptr) {
    size_t dropped = it->second->MvccChainDeltas();
    if (dropped > 0) VersionsLiveGauge()->Add(-static_cast<double>(dropped));
  }
  if (fragments_.erase(table) == 0) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " has no fragment '" + table + "'");
  }
  return Status::OK();
}

TableFragment* Node::fragment(const std::string& table) {
  auto it = fragments_.find(table);
  return it == fragments_.end() ? nullptr : it->second.get();
}

const TableFragment* Node::fragment(const std::string& table) const {
  auto it = fragments_.find(table);
  return it == fragments_.end() ? nullptr : it->second.get();
}

Status Node::LockForWrite(uint64_t txn_id, const std::string& table,
                          const TableFragment& frag, const Row& row) {
  if (locks_ == nullptr || txn_id == kAutoCommitTxnId) return Status::OK();
  PJVM_RETURN_NOT_OK(locks_->Acquire(
      txn_id, LockId{id_, table, HashRow(row), false}, LockMode::kExclusive));
  for (const LocalIndex* index : frag.Indexes()) {
    PJVM_RETURN_NOT_OK(locks_->Acquire(
        txn_id, LockId::IndexKey(id_, table, index->column, row[index->column]),
        LockMode::kExclusive));
  }
  return Status::OK();
}

Result<LocalRowId> Node::Insert(uint64_t txn_id, const std::string& table,
                                Row row) {
  TableFragment* frag = fragment(table);
  if (frag == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " has no fragment '" + table + "'");
  }
  // Transaction locks first — a blocking wait must never happen under the
  // latch (the lock holder may need the latch to make progress).
  PJVM_RETURN_NOT_OK(LockForWrite(txn_id, table, *frag, row));
  NodeLatchGuard latch(*this);
  wal_.Append(LogRecord{0, txn_id, LogRecordType::kInsert, table, row});
  if (txn_id != kAutoCommitTxnId) txns_->AddParticipant(txn_id, id_);
  Row undo_row = txn_id != kAutoCommitTxnId ? row : Row{};
  PJVM_ASSIGN_OR_RETURN(LocalRowId lrid, frag->Insert(std::move(row)));
  // Undo is recorded after the insert so it carries the assigned lrid (and
  // so a failed insert leaves no bogus compensating action).
  if (txn_id != kAutoCommitTxnId) {
    txns_->PushUndo(txn_id, UndoOp{UndoOp::Kind::kDeleteInserted, id_, table,
                                   std::move(undo_row), lrid});
  }
  tracker_->ChargeWrite(id_, WriteKindOf(table));
  // Each secondary access path descends once to splice the new row in; an
  // indexless fragment (merged-layout member) touches only the heap.
  if (frag->has_indexes()) tracker_->ChargeDescent(id_, frag->num_indexes());
  if (snaps_ != nullptr && frag->mvcc_enabled()) {
    RecordVersionOp(txn_id, table, frag, MvccOp::Kind::kInsert,
                    *frag->Get(lrid));
  }
  return lrid;
}

Status Node::DeleteExact(uint64_t txn_id, const std::string& table,
                         const Row& row) {
  TableFragment* frag = fragment(table);
  if (frag == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " has no fragment '" + table + "'");
  }
  // Lock before latch (see Insert). The X locks cover the row whether or
  // not it turns out to exist, which also stabilizes the existence check
  // against a concurrent writer of the same row.
  PJVM_RETURN_NOT_OK(LockForWrite(txn_id, table, *frag, row));
  NodeLatchGuard latch(*this);
  // Locating the victim costs a search, charged whether or not it is found.
  tracker_->ChargeSearch(id_);
  // Confirm existence before logging so the WAL only records deletes that
  // actually happened (replay must never fail).
  Result<LocalRowId> found = frag->FindExact(row);
  if (!found.ok()) {
    return Status::NotFound("no row " + RowToString(row) + " in '" + table +
                            "' at node " + std::to_string(id_));
  }
  LocalRowId lrid = *found;
  wal_.Append(LogRecord{0, txn_id, LogRecordType::kDelete, table, row});
  bool transactional = txn_id != kAutoCommitTxnId;
  if (transactional) {
    txns_->AddParticipant(txn_id, id_);
    txns_->PushUndo(txn_id, UndoOp{UndoOp::Kind::kReinsertDeleted, id_, table,
                                   row, lrid});
  }
  // A transactional delete keeps its slot reserved until the 2PC outcome:
  // if the transaction aborts, the undo pass restores the row at this exact
  // lrid, which committed global-index entries may reference. An immediate
  // free would let a concurrent insert recycle the slot first, forcing the
  // restored row to a new lrid and leaving those entries dangling.
  PJVM_RETURN_NOT_OK(frag->DeleteByRid(lrid, /*keep_slot=*/transactional));
  if (transactional) deferred_frees_[txn_id].emplace_back(table, lrid);
  // The write itself is INSERT-weighted (one page read-modify-write).
  tracker_->ChargeWrite(id_, WriteKindOf(table));
  if (frag->has_indexes()) tracker_->ChargeDescent(id_, frag->num_indexes());
  if (snaps_ != nullptr && frag->mvcc_enabled()) {
    RecordVersionOp(txn_id, table, frag, MvccOp::Kind::kDelete, row);
  }
  return Status::OK();
}

Result<ProbeResult> Node::IndexProbe(const std::string& table, int column,
                                     const Value& key, uint64_t txn_id) {
  TableFragment* frag = fragment(table);
  if (frag == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " has no fragment '" + table + "'");
  }
  // Lock before latch: the S lock may block (wait-die) on a client thread;
  // under a latch or on a worker the lock manager aborts instead.
  if (locks_ != nullptr && txn_id != kAutoCommitTxnId) {
    PJVM_RETURN_NOT_OK(locks_->Acquire(
        txn_id, LockId::IndexKey(id_, table, column, key), LockMode::kShared));
  }
  NodeLatchGuard latch(*this, LatchMode::kShared);
  const LocalIndex* index = frag->FindIndex(column);
  if (index == nullptr) {
    return Status::InvalidArgument("no index on column " +
                                   std::to_string(column) + " of '" + table +
                                   "' at node " + std::to_string(id_));
  }
  tracker_->ChargeSearch(id_);
  tracker_->ChargeDescent(id_);
  PJVM_ASSIGN_OR_RETURN(ProbeResult result, frag->Probe(column, key));
  if (!index->clustered) {
    tracker_->ChargeFetch(id_, result.rows.size());
  }
  return result;
}

Status Node::AcquireTableShared(uint64_t txn_id, const std::string& table) {
  if (locks_ == nullptr || txn_id == kAutoCommitTxnId) return Status::OK();
  return locks_->Acquire(txn_id, LockId::Table(id_, table), LockMode::kShared);
}

Status Node::ApplyUndo(const UndoOp& op) {
  TableFragment* frag = fragment(op.table);
  if (frag == nullptr) {
    return Status::Internal("abort: missing fragment '" + op.table + "'");
  }
  NodeLatchGuard latch(*this);
  switch (op.kind) {
    case UndoOp::Kind::kDeleteInserted:
      // The row never committed, so nothing durable references its lrid;
      // free the slot normally.
      return frag->DeleteByRid(op.lrid);
    case UndoOp::Kind::kReinsertDeleted:
      // Restore the row into the slot the delete reserved — the lrid that
      // committed global-index entries still point at.
      return frag->InsertAt(op.lrid, op.row);
  }
  return Status::Internal("abort: unknown undo kind");
}

void Node::ReleaseDeferredSlots(uint64_t txn_id) {
  NodeLatchGuard latch(*this);
  auto it = deferred_frees_.find(txn_id);
  if (it == deferred_frees_.end()) return;
  for (const auto& [table, lrid] : it->second) {
    TableFragment* frag = fragment(table);
    if (frag != nullptr) frag->ReleaseSlot(lrid);
  }
  deferred_frees_.erase(it);
}

void Node::AbandonDeferredSlots(uint64_t txn_id) {
  NodeLatchGuard latch(*this);
  deferred_frees_.erase(txn_id);
}

Status Node::EscrowReplace(const std::string& table, LocalRowId lrid,
                           Row row) {
  TableFragment* frag = fragment(table);
  if (frag == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " has no fragment '" + table + "'");
  }
  // Exclusive latch is re-entrant: the journal's caller already holds it
  // for the probe that produced `lrid`, so the row cannot have moved.
  NodeLatchGuard latch(*this);
  PJVM_RETURN_NOT_OK(frag->DeleteByRid(lrid, /*keep_slot=*/true));
  PJVM_RETURN_NOT_OK(frag->InsertAt(lrid, std::move(row)));
  // One page read-modify-write; the group key is unchanged, so the index
  // leaf is rewritten in place (no extra descent).
  tracker_->ChargeWrite(id_, WriteKindOf(table));
  return Status::OK();
}

Status Node::ApplyLogRecord(const LogRecord& record) {
  TableFragment* frag = fragment(record.table);
  if (frag == nullptr) {
    return Status::NotFound("recovery: node " + std::to_string(id_) +
                            " has no fragment '" + record.table + "'");
  }
  switch (record.type) {
    case LogRecordType::kInsert:
      return frag->Insert(record.row).status();
    case LogRecordType::kDelete:
      return frag->DeleteExact(record.row).status();
    case LogRecordType::kEscrowDelta: {
      // Logical redo: add the deltas to the stored group row found by its
      // prefix. The group row is guaranteed present: its birth (a physical
      // kInsert) precedes every escrow delta on it in the log, serialized by
      // the V/X conflict between deltas and birth/death.
      const int width = record.aux;
      LocalRowId lrid = 0;
      const Row* current = nullptr;
      frag->ForEach([&](LocalRowId rid, const Row& candidate) {
        if (std::equal(candidate.begin(), candidate.begin() + width,
                       record.row.begin())) {
          lrid = rid;
          current = &candidate;
          return false;
        }
        return true;
      });
      if (current == nullptr) {
        return Status::Internal("recovery: escrow delta for a missing group " +
                                RowToString(record.row) + " in '" +
                                record.table + "'");
      }
      Row next = *current;
      for (size_t i = width; i < record.row.size(); ++i) {
        if (next[i].is_int64()) {
          next[i] = Value{next[i].AsInt64() + record.row[i].AsInt64()};
        } else {
          next[i] = Value{next[i].AsDouble() + record.row[i].AsDouble()};
        }
      }
      PJVM_RETURN_NOT_OK(frag->DeleteByRid(lrid, /*keep_slot=*/true));
      return frag->InsertAt(lrid, std::move(next));
    }
    default:
      return Status::InvalidArgument("recovery: non-data record");
  }
}

void Node::WipeFragments() {
  if (snaps_ != nullptr) {
    double dropped = 0;
    for (const auto& [name, frag] : fragments_) {
      dropped += static_cast<double>(frag->MvccChainDeltas());
    }
    if (dropped > 0) VersionsLiveGauge()->Add(-dropped);
  }
  fragments_.clear();
  // Reservations described slots in the heaps that just vanished; recovery
  // rebuilds heaps (and global indexes) from checkpoint + WAL.
  deferred_frees_.clear();
}

Status Node::RecreateFragments(const Catalog& catalog, int rows_per_page) {
  fragments_.clear();
  for (const std::string& name : catalog.ListNames()) {
    PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog.Get(name));
    PJVM_RETURN_NOT_OK(CreateFragment(*def, rows_per_page));
  }
  return Status::OK();
}

void Node::Checkpoint() {
  checkpoint_.clear();
  for (const auto& [name, frag] : fragments_) {
    checkpoint_[name] = frag->AllRows();
  }
  has_checkpoint_ = true;
  wal_.Clear();
}

Status Node::RestoreCheckpoint() {
  if (!has_checkpoint_) return Status::OK();
  for (const auto& [name, rows] : checkpoint_) {
    TableFragment* frag = fragment(name);
    if (frag == nullptr) {
      // The table was dropped after the checkpoint; its rows are obsolete.
      continue;
    }
    for (const Row& row : rows) {
      PJVM_RETURN_NOT_OK(frag->Insert(row).status());
    }
  }
  return Status::OK();
}

Status Node::CheckInvariants() const {
  for (const auto& [name, frag] : fragments_) {
    Status st = frag->CheckInvariants();
    if (!st.ok()) {
      return Status::Internal("node " + std::to_string(id_) + " fragment '" +
                              name + "': " + st.ToString());
    }
  }
  return Status::OK();
}

}  // namespace pjvm
