
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/tpcr.cc" "src/CMakeFiles/pjvm_workload.dir/workload/tpcr.cc.o" "gcc" "src/CMakeFiles/pjvm_workload.dir/workload/tpcr.cc.o.d"
  "/root/repo/src/workload/twotable.cc" "src/CMakeFiles/pjvm_workload.dir/workload/twotable.cc.o" "gcc" "src/CMakeFiles/pjvm_workload.dir/workload/twotable.cc.o.d"
  "/root/repo/src/workload/update_stream.cc" "src/CMakeFiles/pjvm_workload.dir/workload/update_stream.cc.o" "gcc" "src/CMakeFiles/pjvm_workload.dir/workload/update_stream.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/pjvm_workload.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/pjvm_workload.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_view.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
