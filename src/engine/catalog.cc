#include "engine/catalog.h"

namespace pjvm {

const char* TableKindToString(TableKind kind) {
  switch (kind) {
    case TableKind::kBase:
      return "BASE";
    case TableKind::kAuxiliary:
      return "AUXILIARY";
    case TableKind::kView:
      return "VIEW";
    case TableKind::kGlobalIndex:
      return "GLOBAL_INDEX";
  }
  return "UNKNOWN";
}

std::string PartitionSpec::ToString() const {
  if (kind == Kind::kHashColumn) return "HASH(" + column + ")";
  return "ROUND_ROBIN";
}

int TableDef::PartitionColumn() const {
  if (!partition.is_hash()) return -1;
  auto idx = schema.ColumnIndex(partition.column);
  if (!idx.ok()) return -1;
  return *idx;
}

bool TableDef::HasIndexOn(const std::string& column) const {
  for (const IndexSpec& idx : indexes) {
    if (idx.column == column) return true;
  }
  return false;
}

bool TableDef::HasClusteredIndexOn(const std::string& column) const {
  for (const IndexSpec& idx : indexes) {
    if (idx.column == column && idx.clustered) return true;
  }
  return false;
}

std::string TableDef::ToString() const {
  std::string out = std::string(TableKindToString(kind)) + " " + name + " " +
                    schema.ToString() + " " + partition.ToString();
  for (const IndexSpec& idx : indexes) {
    out += idx.clustered ? " CLUSTERED_INDEX(" : " INDEX(";
    out += idx.column + ")";
  }
  return out;
}

Status Catalog::AddTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table '" + def.name + "' already exists");
  }
  if (def.partition.is_hash() && !def.schema.HasColumn(def.partition.column)) {
    return Status::InvalidArgument("partition column '" + def.partition.column +
                                   "' not in schema of '" + def.name + "'");
  }
  int clustered_count = 0;
  for (const IndexSpec& idx : def.indexes) {
    if (!def.schema.HasColumn(idx.column)) {
      return Status::InvalidArgument("index column '" + idx.column +
                                     "' not in schema of '" + def.name + "'");
    }
    if (idx.clustered) ++clustered_count;
  }
  if (clustered_count > 1) {
    return Status::InvalidArgument(
        "table '" + def.name +
        "' declares multiple clustered indexes; a relation can be clustered "
        "on at most one attribute");
  }
  tables_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status Catalog::AddIndexToTable(const std::string& name, IndexSpec index) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  TableDef& def = it->second;
  if (!def.schema.HasColumn(index.column)) {
    return Status::InvalidArgument("index column '" + index.column +
                                   "' not in schema of '" + name + "'");
  }
  if (def.HasIndexOn(index.column)) {
    return Status::AlreadyExists("table '" + name +
                                 "' already has an index on '" + index.column +
                                 "'");
  }
  if (index.clustered) {
    for (const IndexSpec& existing : def.indexes) {
      if (existing.clustered) {
        return Status::InvalidArgument("table '" + name +
                                       "' already has a clustered index");
      }
    }
  }
  def.indexes.push_back(std::move(index));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

Result<const TableDef*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Catalog::ListNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::ListNames(TableKind kind) const {
  std::vector<std::string> names;
  for (const auto& [name, def] : tables_) {
    if (def.kind == kind) names.push_back(name);
  }
  return names;
}

}  // namespace pjvm
