#ifndef PJVM_ENGINE_NODE_H_
#define PJVM_ENGINE_NODE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/row.h"
#include "common/status.h"
#include "common/worker_context.h"
#include "engine/catalog.h"
#include "storage/table_fragment.h"
#include "txn/lock_manager.h"
#include "txn/snapshot_manager.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace pjvm {

/// \brief Access mode for a node's physical latch.
enum class LatchMode { kShared = 0, kExclusive };

/// \brief Per-node reader/writer latch with writer re-entrancy.
///
/// Read-only phases (index probes, estimation scans, view lookups) take
/// shared access and overlap on the same node; inserts/deletes/undo take
/// exclusive. Semantics:
///
///  - **Exclusive is re-entrant** on the owning thread (the old recursive
///    latch behavior), and subsumes shared: a writer's nested shared
///    acquisitions just deepen its exclusive hold.
///  - **Shared is re-entrant** on the same thread: a nested shared acquire
///    bypasses the waiting-writer gate (the outer hold already excludes
///    writers), so writer priority can never self-deadlock a reader.
///  - **Shared→exclusive upgrade is forbidden** (it deadlocks against a
///    symmetric upgrader); no engine call path performs one, and the latch
///    aborts the process if one appears.
///  - Writers get priority: new top-level readers queue behind a waiting
///    writer, bounding writer wait by the current readers' critical
///    sections.
///
/// With `set_rw_enabled(false)` shared acquisitions take exclusive access,
/// reproducing the pre-reader/writer behavior exactly (the contention
/// bench's baseline mode).
class NodeLatch {
 public:
  NodeLatch() = default;
  NodeLatch(const NodeLatch&) = delete;
  NodeLatch& operator=(const NodeLatch&) = delete;

  void AcquireShared() const;
  void ReleaseShared() const;
  void AcquireExclusive() const;
  void ReleaseExclusive() const;

  void set_rw_enabled(bool on) { rw_enabled_ = on; }
  bool rw_enabled() const { return rw_enabled_; }

 private:
  /// This thread's shared hold depth on this latch (created at 0).
  static int& SharedDepth(const NodeLatch* latch);
  /// Read-only variant: 0 when this thread holds no shared latch here.
  static int SharedDepthOf(const NodeLatch* latch);
  static void DropSharedDepth(const NodeLatch* latch);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int readers_ = 0;
  mutable int waiting_writers_ = 0;
  /// Owning writer thread, or default id. Written under mu_ (release),
  /// read lock-free (acquire) for the re-entrancy fast path.
  mutable std::atomic<std::thread::id> writer_{};
  mutable int writer_depth_ = 0;
  bool rw_enabled_ = true;
};

/// \brief One data server node: its table fragments, its write-ahead log,
/// and the cost-charged local operations the rest of the engine composes.
///
/// Every mutation is WAL-logged (by row content) and, for explicit
/// transactions, paired with a compensating undo action in the TxnManager.
/// Every operation charges the paper's primitive costs (SEARCH, FETCH,
/// INSERT) to this node in the shared CostTracker.
///
/// **Physical latch.** The node's worker thread is the common writer of its
/// fragments, but concurrent client transactions also read and write them
/// directly (LocateExact, undo application, the maintainers' estimation
/// scans). All fragment and index access therefore goes through the node's
/// reader/writer latch — the Node methods take it themselves (shared for
/// probes, exclusive for mutations); external callers touching
/// `fragment(...)` directly must hold a NodeLatchGuard in the matching
/// mode. Latches order *after* transaction locks: a blocking lock acquire
/// must never happen while a latch is held in either mode (the lock
/// manager degrades to non-blocking in that case, see
/// common/worker_context.h), so latch hold times are bounded by local work
/// and cannot deadlock.
class Node {
 public:
  Node(int id, CostTracker* tracker, TxnManager* txns,
       LockManager* locks = nullptr, SnapshotManager* snaps = nullptr)
      : id_(id), tracker_(tracker), txns_(txns), locks_(locks),
        snaps_(snaps) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  Wal& wal() { return wal_; }
  const Wal& wal() const { return wal_; }

  /// The node's physical latch. Re-entrant per mode so a latched caller can
  /// invoke Node methods (which latch again) without self-deadlock. Prefer
  /// NodeLatchGuard over acquiring it directly — the guard also maintains
  /// the thread's latch-depth context for the lock manager.
  NodeLatch& latch() const { return latch_; }

  /// Creates this node's fragment of `def`, including its local indexes.
  /// Row-content lookup is always enabled so content deletes are O(1).
  Status CreateFragment(const TableDef& def, int rows_per_page);
  Status DropFragment(const std::string& table);

  /// The fragment, or nullptr if this node has none for `table`.
  TableFragment* fragment(const std::string& table);
  const TableFragment* fragment(const std::string& table) const;

  /// Inserts a row: charges INSERT, logs, records undo for explicit txns.
  Result<LocalRowId> Insert(uint64_t txn_id, const std::string& table, Row row);

  /// Deletes one row equal to `row`: charges a SEARCH (to locate it) plus
  /// INSERT-weighted write I/O, logs, records undo for explicit txns.
  Status DeleteExact(uint64_t txn_id, const std::string& table, const Row& row);

  /// Index probe on `column` = `key`. Charges one SEARCH; a non-clustered
  /// index additionally charges one FETCH per matching row, while a
  /// clustered index charges none (the paper's assumption 5/7: all matches
  /// sit on the reached leaf page). Under locking, an explicit transaction
  /// takes an S lock on the probed index key.
  Result<ProbeResult> IndexProbe(const std::string& table, int column,
                                 const Value& key,
                                 uint64_t txn_id = kAutoCommitTxnId);

  /// S-locks this node's whole fragment of `table` for a scanning read
  /// (sort-merge joins). No-op without locking or for autocommit.
  Status AcquireTableShared(uint64_t txn_id, const std::string& table);

  /// Applies one compensating action during transaction rollback: mutates
  /// the fragment under the latch without logging or cost charging (the
  /// forward operation already paid; recovery replays only committed work).
  /// Compensation is lrid-exact: an undone insert frees the slot it
  /// occupied, and an undone delete restores the row into its reserved slot
  /// (see DeleteExact) so committed global-index entries keep resolving.
  Status ApplyUndo(const UndoOp& op);

  /// Commit epilogue: recycles the heap slots of this transaction's
  /// transactional deletes (they were kept reserved so an abort could
  /// restore each row at its original lrid). Call once per participant
  /// after the commit decision is durable.
  void ReleaseDeferredSlots(uint64_t txn_id);

  /// Abort epilogue: drops the reserved-slot bookkeeping without freeing
  /// anything — the undo pass re-occupied those slots with the restored
  /// rows. Call once per participant after undo completes.
  void AbandonDeferredSlots(uint64_t txn_id);

  /// In-place escrow rewrite of one aggregate group row (view/escrow.h):
  /// replaces the row at `lrid` with `row` under the caller's exclusive
  /// latch, charging one write I/O. No WAL record, no undo, no version op —
  /// the escrow journal owns all three (logical kEscrowDelta records at
  /// prepare, journal rollback on abort, committed-image version ops at
  /// publish). The caller must hold this node's exclusive latch and the
  /// group's V (or X) lock.
  Status EscrowReplace(const std::string& table, LocalRowId lrid, Row row);

  /// Applies a WAL record during recovery: no logging, no cost charging.
  Status ApplyLogRecord(const LogRecord& record);

  /// Drops all fragment contents (simulated crash losing volatile state).
  /// Fragment definitions (schemas/indexes) are re-created by the caller.
  void WipeFragments();

  /// Re-creates an empty fragment set from catalog definitions (recovery).
  Status RecreateFragments(const Catalog& catalog, int rows_per_page);

  /// Takes a durable snapshot of every fragment's rows and truncates the
  /// WAL: recovery then restores the snapshot and replays only the log
  /// suffix. The caller guarantees no transaction is in flight.
  void Checkpoint();
  /// Loads the last checkpoint's rows into the (recreated) fragments.
  Status RestoreCheckpoint();
  bool HasCheckpoint() const { return has_checkpoint_; }

  Status CheckInvariants() const;

 private:
  CostTracker::WriteKind WriteKindOf(const std::string& table) const;

  /// X-locks the row's content identity and every indexed key it carries.
  Status LockForWrite(uint64_t txn_id, const std::string& table,
                      const TableFragment& frag, const Row& row);

  /// Records one mutation for MVCC snapshot publication. `row` is the
  /// inserted tuple or the delete victim's content — version identity is by
  /// content, never by heap lrid (the free list recycles lrids, so an lrid
  /// can alias a different row by publish time). Must be called under the
  /// node latch, right after the heap changed (pages_after / rows_after
  /// capture the fragment's shape at that instant). Autocommit ops publish
  /// immediately; explicit-transaction ops are buffered in the TxnManager
  /// until the 2PC decision.
  void RecordVersionOp(uint64_t txn_id, const std::string& table,
                       TableFragment* frag, MvccOp::Kind kind, Row row);

  int id_;
  CostTracker* tracker_;
  TxnManager* txns_;
  LockManager* locks_;
  SnapshotManager* snaps_;
  mutable NodeLatch latch_;
  Wal wal_;
  std::map<std::string, std::unique_ptr<TableFragment>> fragments_;
  std::map<std::string, TableKind> kinds_;
  /// Heap slots emptied by this node's transactional deletes, keyed by txn:
  /// reserved (off the free list) until the 2PC outcome — commit recycles
  /// them, abort re-occupies them via undo. Guarded by the node latch.
  /// Volatile by design: a crash wipes the heaps and recovery rebuilds them
  /// (and the global indexes) from checkpoint + WAL, so no reservation
  /// outlives the slots it described.
  std::unordered_map<uint64_t, std::vector<std::pair<std::string, LocalRowId>>>
      deferred_frees_;
  // Simulated durable checkpoint: survives Crash() like the WAL does.
  bool has_checkpoint_ = false;
  std::map<std::string, std::vector<Row>> checkpoint_;
};

/// \brief RAII latch scope over one node: takes the node's latch in the
/// requested mode and marks the thread as latched (so the lock manager
/// refuses to park it on a transaction lock — shared holders included,
/// since the holder may itself need the exclusive latch to progress). Use
/// for any direct fragment/index access outside the Node methods; default
/// exclusive, pass LatchMode::kShared for read-only sections.
class NodeLatchGuard {
 public:
  explicit NodeLatchGuard(const Node& node,
                          LatchMode mode = LatchMode::kExclusive)
      : latch_(&node.latch()), mode_(mode) {
    if (mode_ == LatchMode::kShared) {
      latch_->AcquireShared();
    } else {
      latch_->AcquireExclusive();
    }
  }
  ~NodeLatchGuard() {
    if (mode_ == LatchMode::kShared) {
      latch_->ReleaseShared();
    } else {
      latch_->ReleaseExclusive();
    }
  }

  NodeLatchGuard(const NodeLatchGuard&) = delete;
  NodeLatchGuard& operator=(const NodeLatchGuard&) = delete;

 private:
  const NodeLatch* latch_;
  LatchMode mode_;
  LatchDepthScope depth_;
};

}  // namespace pjvm

#endif  // PJVM_ENGINE_NODE_H_
