// Reproduces Figure 14: *measured* view maintenance time for JV1 and JV2
// under the naive and auxiliary relation methods, inserting 128 customer
// tuples (each matching one orders tuple) on 2-, 4-, and 8-node
// configurations — the paper's Teradata experiment, run on this engine.
//
// Like the paper, only the second step of the maintenance transaction is
// reported: "the view maintenance consists of three steps: updating the
// base relation, computing the changes to the join view, and updating the
// join view. As the first step and the third step were the same for the
// naive method and the auxiliary relation method, we only measured the time
// spent on the second step." The engine's per-write category counters make
// that subtraction exact (ComputeResponseTime = searches + fetches only).
//
// As an extension, the global index method — which the paper could not run
// ("Teradata does not currently support the global index method") — is
// measured as a third series.
//
// Usage: bench_fig14_measured [customers]   (default 20000, ~0.13x paper)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

namespace pjvm {
namespace {

struct Cell {
  double compute_io;
  double wall_ms;
};

Cell MeasureOne(int nodes, MaintenanceMethod method, bool jv2,
                int64_t customers) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  ParallelSystem sys(cfg);
  TpcrConfig tpcr;
  tpcr.customers = customers;
  tpcr.extra_customer_keys = 256;
  LoadTpcr(&sys, GenerateTpcr(tpcr)).Check();
  ViewManager manager(&sys);
  manager.RegisterView(jv2 ? MakeJv2() : MakeJv1(), method).Check();
  std::vector<Row> rows;
  for (int64_t i = 0; i < 128; ++i) rows.push_back(MakeDeltaCustomer(tpcr, i));
  bench::RunResult r =
      bench::MeterDelta(&manager, DeltaBatch::Inserts("customer", rows));
  return Cell{sys.cost().ComputeResponseTime(), r.wall_ms};
}

}  // namespace
}  // namespace pjvm

int main(int argc, char** argv) {
  using namespace pjvm;
  int64_t customers = argc > 1 ? std::atoll(argv[1]) : 20000;

  // One measurement pass; both tables and the JSON report read from it.
  struct RowOfCells {
    int nodes;
    Cell cells[6];  // AR_JV1, naive_JV1, GI_JV1, AR_JV2, naive_JV2, GI_JV2
  };
  const char* labels[] = {"AR_JV1",  "naive_JV1", "GI_JV1",
                          "AR_JV2", "naive_JV2", "GI_JV2"};
  std::vector<RowOfCells> grid;
  for (int l : {2, 4, 8}) {
    RowOfCells row;
    row.nodes = l;
    int c = 0;
    for (bool jv2 : {false, true}) {
      for (MaintenanceMethod m :
           {MaintenanceMethod::kAuxRelation, MaintenanceMethod::kNaive,
            MaintenanceMethod::kGlobalIndex}) {
        row.cells[c++] = MeasureOne(l, m, jv2, customers);
      }
    }
    grid.push_back(row);
  }

  bench::PrintHeader(
      "Figure 14: measured delta-join time, 128 customer inserts "
      "(per-node I/Os, step 2 only)");
  std::printf("%6s %14s %14s %14s %14s %14s %14s\n", "nodes", "AR_JV1",
              "naive_JV1", "GI_JV1", "AR_JV2", "naive_JV2", "GI_JV2");
  double prev_ratio1 = 0.0, prev_ratio2 = 0.0;
  bool speedup_grows = true;
  for (const RowOfCells& row : grid) {
    std::printf("%6d %14.0f %14.0f %14.0f %14.0f %14.0f %14.0f\n", row.nodes,
                row.cells[0].compute_io, row.cells[1].compute_io,
                row.cells[2].compute_io, row.cells[3].compute_io,
                row.cells[4].compute_io, row.cells[5].compute_io);
    double ratio1 = row.cells[1].compute_io / row.cells[0].compute_io;
    double ratio2 = row.cells[4].compute_io / row.cells[3].compute_io;
    speedup_grows &= ratio1 > prev_ratio1 && ratio2 > prev_ratio2;
    prev_ratio1 = ratio1;
    prev_ratio2 = ratio2;
  }
  std::printf(
      "\nAR-over-naive speedup grows with nodes (the paper's Figure 13/14 "
      "trend): %s\n",
      speedup_grows ? "YES" : "NO");

  bench::PrintHeader(
      "Figure 14: wall-clock of the full maintenance transaction (ms)");
  std::printf("%6s %14s %14s %14s %14s %14s %14s\n", "nodes", "AR_JV1",
              "naive_JV1", "GI_JV1", "AR_JV2", "naive_JV2", "GI_JV2");
  for (const RowOfCells& row : grid) {
    std::printf("%6d %14.2f %14.2f %14.2f %14.2f %14.2f %14.2f\n", row.nodes,
                row.cells[0].wall_ms, row.cells[1].wall_ms, row.cells[2].wall_ms,
                row.cells[3].wall_ms, row.cells[4].wall_ms,
                row.cells[5].wall_ms);
  }

  bench::BenchReport report("fig14_measured");
  {
    bench::JsonWriter config;
    config.BeginObject()
        .Key("customers").Int(customers)
        .Key("delta_customers").Int(128)
        .EndObject();
    report.Add("config", config.str());
  }
  bench::JsonWriter points;
  points.BeginArray();
  for (const RowOfCells& row : grid) {
    points.BeginObject().Key("nodes").Int(row.nodes);
    for (int c = 0; c < 6; ++c) {
      points.Key(labels[c])
          .BeginObject()
          .Key("compute_io").Num(row.cells[c].compute_io)
          .Key("wall_ms").Num(row.cells[c].wall_ms)
          .EndObject();
    }
    points.EndObject();
  }
  points.EndArray();
  report.Add("points", points.str());
  {
    bench::JsonWriter trend;
    trend.Bool(speedup_grows);
    report.Add("ar_speedup_grows_with_nodes", trend.str());
  }
  report.Write();
  return 0;
}
