#ifndef PJVM_VIEW_HEAVY_LIGHT_H_
#define PJVM_VIEW_HEAVY_LIGHT_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "engine/system.h"
#include "storage/histogram.h"
#include "storage/row_id.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief Histogram-backed heavy/light key classifier (Abo-Khamis et al.:
/// maintain queries under updates by partitioning keys into a heavy and a
/// light regime).
///
/// A delta row is *heavy* for a view when some incident join edge's
/// neighbour column matches the row's key value with estimated fanout at
/// least `promote_ratio` times that column's average fanout — i.e. the row
/// will touch a disproportionate share of the join, so per-tuple eager
/// maintenance pays the hot-key lock-and-probe cost over and over.
/// Estimates come from per-fragment equi-depth histograms (exact for hot
/// keys: Build never splits a value across buckets), merged per column.
///
/// Classification is *hysteretic*: a key already heavy stays heavy until its
/// ratio drops below promote_ratio / 2, so a key oscillating at the boundary
/// does not thrash between regimes (the state lives per (table, column,
/// key) and is advisory — either classification maintains correctly).
///
/// Statistics freshness: histograms are built lazily per (table, column) on
/// first use and invalidated when RecordOps observes `stats_refresh_ops`
/// maintenance rows applied to the table since the last build (0 = never —
/// the pre-fix behaviour, which left a sustained Zipf stream scored against
/// yesterday's distribution).
///
/// Thread safety: internally locked; histogram builds take shared node
/// latches like any other planning-time statistics read.
class HeavyLightClassifier {
 public:
  HeavyLightClassifier(ParallelSystem* sys, double promote_ratio,
                       int stats_refresh_ops)
      : sys_(sys),
        promote_ratio_(promote_ratio),
        stats_refresh_ops_(stats_refresh_ops) {}

  /// Records `ops` maintenance rows applied to `table`; crossing the
  /// refresh threshold drops the table's cached statistics (rebuilt lazily).
  void RecordOps(const std::string& table, size_t ops);

  /// True when `row` (a full row of base `updated_base`) is heavy for
  /// `bound`: some incident bound edge's neighbour column matches one of the
  /// row's key values at heavy fanout.
  bool IsHeavy(const BoundView& bound, int updated_base, const Row& row);

  /// Classification of one (neighbour table, neighbour column, key) with
  /// hysteresis state update. Exposed for tests.
  bool HeavyKey(const std::string& table, int col, const Value& key);

  /// Estimated rows of `table` whose `col` equals `key`, summed over the
  /// per-fragment histograms.
  double EstimateEq(const std::string& table, int col, const Value& key);
  /// Average rows per distinct value of `table`.`col` (>= 1 when non-empty).
  double AvgFanout(const std::string& table, int col);

  /// Number of keys currently classified heavy (mirrors the
  /// pjvm_heavy_keys_live gauge).
  size_t heavy_keys_live() const;

 private:
  struct ColumnStatsEntry {
    std::vector<EquiDepthHistogram> fragments;
    double avg_fanout = 1.0;
  };

  ColumnStatsEntry& StatsFor(const std::string& table, int col);

  mutable std::mutex mu_;
  ParallelSystem* sys_;
  double promote_ratio_;
  int stats_refresh_ops_;
  std::map<std::pair<std::string, int>, ColumnStatsEntry> stats_;
  std::map<std::string, size_t> ops_since_build_;
  std::set<std::string> heavy_;  // "table#col#key" currently heavy.
};

/// \brief Per-view buffers of deferred heavy-key delta rows.
///
/// Each buffer holds signed full base rows (with their arrival gids) for
/// exactly one base of the view — ViewManager folds the buffer before
/// admitting a delta on any *other* base, which is what keeps a fold's join
/// against the neighbours' current state equal to the eager result.
///
/// Append cancels opposite-sign churn by content: a delete matching a
/// buffered insert annihilates it (and vice versa), so an insert/delete pair
/// within the deferral window never touches the view at all. Cancelling by
/// content is exact here because view derivations depend only on row
/// content, and the neighbours are frozen for the buffer's lifetime.
///
/// Externally synchronized: ViewManager guards every access with its
/// heavy/light mutex.
class DeferredDeltaStore {
 public:
  struct Buffer {
    int base_idx = -1;
    std::vector<Row> inserts;
    std::vector<GlobalRowId> insert_gids;
    std::vector<Row> deletes;
    std::vector<GlobalRowId> delete_gids;

    size_t rows() const { return inserts.size() + deletes.size(); }
  };

  /// Buffers one signed row for `view` (creating the buffer with `base_idx`
  /// if empty). Returns true when the row cancelled a buffered opposite-sign
  /// row instead of growing the buffer.
  bool Append(const std::string& view, int base_idx, bool is_delete, Row row,
              GlobalRowId gid);

  /// nullptr when the view has no (possibly empty) buffer.
  const Buffer* Find(const std::string& view) const;

  /// Rendered-content -> multiplicity of the view's buffered rows of one
  /// sign; used by the router to match deletes against buffered inserts.
  std::map<std::string, int> SignedCounts(const std::string& view,
                                          bool deletes) const;

  size_t rows(const std::string& view) const;
  size_t total_rows() const;
  /// Rows annihilated by opposite-sign cancellation since construction.
  size_t cancelled() const { return cancelled_; }

  void Clear(const std::string& view);

 private:
  std::map<std::string, Buffer> buffers_;
  size_t cancelled_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_HEAVY_LIGHT_H_
