#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace pjvm {

int HistogramData::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);  // floor(log2(v)) + 1, in [1, 64]
}

uint64_t HistogramData::BucketLo(int i) {
  if (i <= 0) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t HistogramData::BucketHi(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void HistogramData::Add(uint64_t v) {
  ++buckets[BucketIndex(v)];
  ++count;
  sum += v;
  if (count == 1) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count - 1);
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(cum + buckets[i]) > rank) {
      double within = (rank - static_cast<double>(cum)) /
                      static_cast<double>(buckets[i]);
      double lo = static_cast<double>(BucketLo(i));
      double hi = static_cast<double>(BucketHi(i));
      double v = lo + within * (hi - lo);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cum += buckets[i];
  }
  return static_cast<double>(max);
}

void LatencyHistogram::Record(uint64_t v) {
  buckets_[HistogramData::BucketIndex(v)].fetch_add(1,
                                                    std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramData LatencyHistogram::Snapshot() const {
  HistogramData d;
  for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
    d.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = d.count > 0 ? min_.load(std::memory_order_relaxed) : 0;
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

namespace {

/// Splits "base{a="b"}" into ("base", "a=\"b\"").
std::pair<std::string, std::string> SplitLabels(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), labels};
}

std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  std::string all = labels;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  if (all.empty()) return base;
  return base + "{" + all + "}";
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    auto [base, labels] = SplitLabels(name);
    os << "# TYPE " << base << " counter\n";
    os << WithLabels(base, labels) << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    auto [base, labels] = SplitLabels(name);
    os << "# TYPE " << base << " gauge\n";
    os << WithLabels(base, labels) << " " << gauge->value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    auto [base, labels] = SplitLabels(name);
    HistogramData d = hist->Snapshot();
    os << "# TYPE " << base << " histogram\n";
    uint64_t cum = 0;
    for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
      if (d.buckets[i] == 0) continue;
      cum += d.buckets[i];
      os << WithLabels(base + "_bucket", labels,
                       "le=\"" + std::to_string(HistogramData::BucketHi(i)) +
                           "\"")
         << " " << cum << "\n";
    }
    os << WithLabels(base + "_bucket", labels, "le=\"+Inf\"") << " " << d.count
       << "\n";
    os << WithLabels(base + "_sum", labels) << " " << d.sum << "\n";
    os << WithLabels(base + "_count", labels) << " " << d.count << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, counter] : counters_) {
    os << sep << "\n    \"" << name << "\": " << counter->value();
    sep = ",";
  }
  os << "\n  },\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, gauge] : gauges_) {
    os << sep << "\n    \"" << name << "\": " << gauge->value();
    sep = ",";
  }
  os << "\n  },\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, hist] : histograms_) {
    HistogramData d = hist->Snapshot();
    os << sep << "\n    \"" << name << "\": {\"count\": " << d.count
       << ", \"sum\": " << d.sum << ", \"mean\": " << d.Mean()
       << ", \"min\": " << d.min << ", \"max\": " << d.max
       << ", \"p50\": " << d.P50() << ", \"p95\": " << d.P95()
       << ", \"p99\": " << d.P99() << "}";
    sep = ",";
  }
  os << "\n  }\n}\n";
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace pjvm
