// An interactive SQL shell over the parallel system: create partitioned
// tables, declare materialized join views (choosing a maintenance method
// per view with USING), run DML — every statement is a distributed
// maintenance transaction — and watch the metered costs.
//
//   ./build/examples/pjvm_shell [num_nodes]      # interactive (reads stdin)
//   ./build/examples/pjvm_shell 4 --demo         # runs the built-in script
//
// Statements:
//   CREATE TABLE t (a INT, b DOUBLE, c STRING) PARTITIONED ON a;
//   CREATE JOIN VIEW v AS SELECT ... FROM ... WHERE a.x = b.y
//     [GROUP BY ...] [PARTITIONED ON a.x] USING AR|GI|NAIVE;
//   INSERT INTO t VALUES (1, 2.5, 'x'), (2, 3.5, 'y');
//   DELETE FROM t VALUES (1, 2.5, 'x');
//   SELECT * FROM t [WHERE col = literal];
//   SHOW TABLES;  SHOW COST;

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "engine/system.h"
#include "sql/executor.h"
#include "view/view_manager.h"

namespace {

constexpr const char* kDemoScript = R"sql(
CREATE TABLE customers (id INT, region INT, name STRING) PARTITIONED ON id;
CREATE TABLE orders (order_id INT, customer_id INT, amount DOUBLE)
  PARTITIONED ON order_id;
INSERT INTO customers VALUES (1, 10, 'ada'), (2, 20, 'bob'), (3, 10, 'cy');
INSERT INTO orders VALUES (100, 1, 25.0), (101, 2, 75.5), (102, 1, 12.25);
CREATE JOIN VIEW co AS SELECT c.name, c.region, o.amount
  FROM customers c, orders o WHERE c.id = o.customer_id
  PARTITIONED ON c.region USING AR;
CREATE VIEW region_rev AS SELECT c.region, COUNT(*), SUM(o.amount)
  FROM customers c, orders o WHERE c.id = o.customer_id
  GROUP BY c.region USING GI;
SHOW TABLES;
INSERT INTO orders VALUES (103, 3, 99.0);
SELECT * FROM co;
SELECT * FROM region_rev;
DELETE FROM orders VALUES (100, 1, 25.0);
SELECT * FROM region_rev;
SHOW COST;
)sql";

}  // namespace

int main(int argc, char** argv) {
  using namespace pjvm;
  int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  if (nodes <= 0) nodes = 4;
  SystemConfig config;
  config.num_nodes = nodes;
  ParallelSystem sys(config);
  ViewManager manager(&sys);
  sql::Executor executor(&manager);

  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) demo = true;
  }

  if (demo) {
    std::printf("pjvm shell (%d nodes) — running demo script\n", nodes);
    Status st = executor.ExecuteScript(kDemoScript, std::cout);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }

  std::printf("pjvm shell (%d nodes). Statements end with ';'. Ctrl-D quits.\n",
              nodes);
  std::string buffer;
  std::string line;
  while (true) {
    std::fputs(buffer.empty() ? "pjvm> " : "  ...> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    buffer += line + "\n";
    if (line.find(';') == std::string::npos) continue;
    Status st = executor.ExecuteScript(buffer, std::cout);
    if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
    buffer.clear();
  }
  std::printf("\nbye\n");
  return 0;
}
