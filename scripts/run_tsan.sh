#!/usr/bin/env bash
# Builds the repo under ThreadSanitizer (PJVM_SANITIZE=thread) in a separate
# build tree and runs the concurrency-sensitive suites: the executor's own
# tests, the maintenance property tests that drive every parallel phase, the
# lock manager (wait-die, wound-wait, sharding) + maintenance-retry tests,
# the reader/writer node-latch and WAL group-commit suites, the network
# queue tests, the observability suites (lock-free tracer buffers,
# concurrent histogram recording, windowed-histogram rotation, tracing-on
# maintenance runs), the MVCC snapshot-isolation suite (readers vs.
# parked/racing writers, version GC), the open-loop driver suite
# (scheduler/worker/writer thread handoff, cross-thread telemetry merges),
# and the heavy/light suites (deferred-delta folds racing a wait-die
# blocker on another thread), and the merged co-clustered storage suite
# (concurrent maintenance transactions editing shared per-node trees under
# fragment-range locks, with abort rollback), and the escrow value-lock
# suite (V-lock group increments, V->X upgrade deadlocks, and journal
# rollback racing across writer threads).
#
# Usage: scripts/run_tsan.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
FILTER="${1:-NodeExecutor|ParallelEquivalence|NetworkTest|Maintenance|MethodEquivalence|Tracer|LatencyHistogram|CostTracker|TraceMaintenance|WaitDie|MaintenanceRetry|LockManager|EngineLocking|LockShard|WoundWait|NodeLatch|GroupCommit|LockEscalation|SnapshotIsolation|WindowedHistogram|OpenLoopDriver|HeavyLight|MergedStorage|Escrow}"

cmake -B "$BUILD_DIR" -S . -G Ninja -DPJVM_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target executor_test maintenance_test obs_test trace_maintenance_test \
  lock_test txn_test net_test snapshot_isolation_test openloop_test \
  heavy_light_test merged_storage_test escrow_view_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$BUILD_DIR" -R "$FILTER" --output-on-failure
echo "TSan run clean."
