file(REMOVE_RECURSE
  "CMakeFiles/pjvm_view.dir/view/ar_minimizer.cc.o"
  "CMakeFiles/pjvm_view.dir/view/ar_minimizer.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/aux_relation_maintainer.cc.o"
  "CMakeFiles/pjvm_view.dir/view/aux_relation_maintainer.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/global_index_maintainer.cc.o"
  "CMakeFiles/pjvm_view.dir/view/global_index_maintainer.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/hybrid_advisor.cc.o"
  "CMakeFiles/pjvm_view.dir/view/hybrid_advisor.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/maintainer.cc.o"
  "CMakeFiles/pjvm_view.dir/view/maintainer.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/materialized_view.cc.o"
  "CMakeFiles/pjvm_view.dir/view/materialized_view.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/naive_maintainer.cc.o"
  "CMakeFiles/pjvm_view.dir/view/naive_maintainer.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/planner.cc.o"
  "CMakeFiles/pjvm_view.dir/view/planner.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/view_def.cc.o"
  "CMakeFiles/pjvm_view.dir/view/view_def.cc.o.d"
  "CMakeFiles/pjvm_view.dir/view/view_manager.cc.o"
  "CMakeFiles/pjvm_view.dir/view/view_manager.cc.o.d"
  "libpjvm_view.a"
  "libpjvm_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
