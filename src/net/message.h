#ifndef PJVM_NET_MESSAGE_H_
#define PJVM_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/value.h"
#include "storage/row_id.h"

namespace pjvm {

/// \brief Kind of payload carried between data server nodes.
enum class MessageKind {
  /// Base-table or view tuples being redistributed (insert path).
  kTuples = 0,
  /// Tuples to be deleted at the destination.
  kDeleteTuples,
  /// A probe request: join one carried tuple against a destination fragment.
  kProbe,
  /// A probe request narrowed to specific global row ids (GI method: the
  /// paper's "tuple + global row ids of T_B" message).
  kRidProbe,
  /// Join result tuples headed for the view's home node(s).
  kJoinResults,
  /// Transaction control (prepare / commit / abort).
  kControl,
};

const char* MessageKindToString(MessageKind kind);

/// \brief A unit of inter-node communication in the simulated interconnect.
///
/// The struct is deliberately a "fat union": each kind uses the fields it
/// needs. All cross-node data movement in the engine constructs one of
/// these, so the byte accounting is uniform.
struct Message {
  MessageKind kind = MessageKind::kTuples;
  int from = -1;
  int to = -1;
  /// Destination table (or view, or auxiliary relation) name.
  std::string table;
  std::vector<Row> rows;
  /// Row ids for kRidProbe (the matches known to live at `to`).
  std::vector<LocalRowId> rids;
  /// Control verb for kControl ("prepare", "commit", "abort").
  std::string control;
  uint64_t txn_id = 0;

  /// Approximate wire size in bytes (header + payload).
  size_t ByteSize() const;
};

}  // namespace pjvm

#endif  // PJVM_NET_MESSAGE_H_
