#ifndef PJVM_TXN_WAL_H_
#define PJVM_TXN_WAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/row.h"

namespace pjvm {

/// \brief Kind of a write-ahead-log record.
enum class LogRecordType {
  kInsert = 0,
  kDelete,
  kPrepare,
  kCommit,
  kAbort,
};

const char* LogRecordTypeToString(LogRecordType type);

/// \brief One durable log record on one node.
///
/// Data records identify rows by content rather than by row id so that
/// replay is insensitive to row-id recycling (aborted transactions consume
/// ids on the live path but are skipped during replay).
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kInsert;
  std::string table;
  Row row;

  std::string ToString() const;
};

/// \brief A per-node write-ahead log.
///
/// Appends are durable immediately (the simulated failure model loses all
/// in-memory table state but never the log). Recovery replays, in order, the
/// data records of transactions the coordinator decided to commit.
///
/// **LSN semantics: monotonic across the log's whole lifetime.** `Clear()`
/// (checkpoint truncation) drops the records but never resets `next_lsn_`,
/// so an LSN uniquely identifies one append forever — records written after
/// a checkpoint can never alias pre-checkpoint LSNs that might still be
/// referenced by diagnostics or recovery bookkeeping.
///
/// Append/size/Clear are internally synchronized: parallel write fan-outs
/// append from node-executor workers while client threads run autocommit
/// operations. `records()`/`ReplayCommitted` return/iterate the underlying
/// vector without copying and are for quiescent callers only (recovery,
/// checkpoint, tests) — no appends may be in flight.
class Wal {
 public:
  /// Appends a record, assigning its LSN. Returns the LSN.
  uint64_t Append(LogRecord record);

  const std::vector<LogRecord>& records() const { return records_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  /// The LSN the next append will receive; never decreases (see above).
  uint64_t next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// Visits data records (insert/delete) of transactions for which
  /// `is_committed(txn_id)` is true, in log order.
  void ReplayCommitted(const std::function<bool(uint64_t)>& is_committed,
                       const std::function<void(const LogRecord&)>& apply) const;

  /// Truncates the record list (checkpoint). LSNs stay monotonic: the next
  /// append continues from where the pre-truncation log left off.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;
};

}  // namespace pjvm

#endif  // PJVM_TXN_WAL_H_
