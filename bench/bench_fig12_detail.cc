// Reproduces Figure 12: the 1..300-tuple detail of Figure 11, showing the
// step-wise behaviour of the AR method — its response time depends on
// ceil(|A|/L), the most-loaded node's share of the delta.

#include <iostream>

#include "bench/bench_util.h"
#include "model/figures.h"

int main() {
  pjvm::model::Figure fig = pjvm::model::MakeFigure12();
  pjvm::model::PrintFigure(fig, std::cout);
  pjvm::bench::WriteFigureJson("fig12_detail", fig);
  return 0;
}
