#ifndef PJVM_STORAGE_MERGED_TREE_H_
#define PJVM_STORAGE_MERGED_TREE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/row.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/btree.h"

namespace pjvm {

/// \brief Order-preserving composite-key codec for merged co-clustered
/// storage (leanstore's MergedAdapter idiom).
///
/// A merged tree interleaves the rows of several source structures (local
/// base fragments, foreign ARs) and the view tuples for one join key under a
/// single B+-tree, keyed by the composite
///
///     (join_key, source_tag, source_pk)
///
/// flattened into ONE byte string whose lexicographic order equals the
/// lexicographic order of the components. All rows for one join key are then
/// physically contiguous: a maintenance delta descends once to the key's
/// range and performs every probe and edit in-range.
///
/// Encoding of a single Value (order-preserving within and across rows of
/// the same schema; a leading type byte keeps same-typed columns aligned):
///  - INT64  -> 0x01, then 8 bytes big-endian of (uint64)v XOR (1 << 63)
///  - DOUBLE -> 0x02, then 8 bytes big-endian of the IEEE-754 bits with the
///              standard total-order transform (negative: all bits flipped;
///              non-negative: sign bit set)
///  - STRING -> 0x03, then the bytes with 0x00 escaped as {0x00,0xFF},
///              terminated by {0x00,0x00} (prefix-free, order-preserving)
///
/// The source tag byte orders base/AR members (kSourceTagFirst + member
/// index) before the view tuples (kViewTag), so a range scan yields the join
/// inputs first and the joined outputs last — the physical layout of
/// snippet 2's merged (key, B-rec, C-rec, joined-rec) clustering.
namespace mergedkey {

/// Tag of the i-th source (base or AR) member of a merged cluster.
inline constexpr uint8_t kSourceTagFirst = 0x10;
/// Tag of the materialized-view tuples (sorts after every source tag).
inline constexpr uint8_t kViewTag = 0x7E;

/// Order-preserving encoding of one Value (see class comment).
std::string EncodeValueOrdered(const Value& v);

/// The range prefix shared by every composite key with this join key.
std::string KeyPrefix(const Value& join_key);

/// Full composite key: prefix(join_key) + tag + encoded pk columns.
Value EncodeComposite(const Value& join_key, uint8_t tag, const Row& pk);

/// Inclusive range [RangeLo, RangeHi] covering exactly the composite keys
/// whose join-key component equals `join_key` (the codec is prefix-free, so
/// prefix + 0xFF upper-bounds the prefix's extensions and nothing else).
Value RangeLo(const Value& join_key);
Value RangeHi(const Value& join_key);

/// Source tag of a composite key, given its join-key prefix length.
uint8_t DecodeTag(const std::string& composite, size_t prefix_len);

}  // namespace mergedkey

/// \brief One node's merged co-clustered structure: a single B+-tree over
/// composite keys holding full rows of every cluster member plus the view.
///
/// Like every other per-node structure, it is synchronized externally by the
/// owning node's latch (shared for scans, exclusive for edits) and does no
/// cost accounting itself — the caller charges the one descent per key-range.
class MergedTreeFragment {
 public:
  MergedTreeFragment() = default;
  MergedTreeFragment(const MergedTreeFragment&) = delete;
  MergedTreeFragment& operator=(const MergedTreeFragment&) = delete;

  /// Adds `row` under (join_key, tag, pk). Duplicate rows are kept (bag
  /// semantics, matching the posting-list behavior of every other index).
  void InsertEntry(const Value& join_key, uint8_t tag, const Row& pk,
                   const Row& row);

  /// Removes one instance of `row` from (join_key, tag, pk). NotFound when
  /// the composite key or the row is absent.
  Status RemoveEntry(const Value& join_key, uint8_t tag, const Row& pk,
                     const Row& row);

  /// Visits every (tag, row) in the join key's range, grouped by tag in tag
  /// order (sources first, view last). Returning false stops the scan.
  void ScanKey(const Value& join_key,
               const std::function<bool(uint8_t, const Row&)>& fn) const;

  /// Visits every entry in composite-key order.
  void ForEach(
      const std::function<bool(uint8_t, const Row&)>& fn) const;

  /// Drops everything (rebuild-from-heap path).
  void Clear();

  size_t num_entries() const { return tree_.num_items(); }
  bool empty() const { return tree_.empty(); }
  /// Approximate footprint: composite key bytes + row bytes.
  size_t byte_size() const { return bytes_; }

  Status CheckInvariants() const { return tree_.CheckInvariants(); }

 private:
  BPlusTree<Row> tree_;
  size_t bytes_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_STORAGE_MERGED_TREE_H_
