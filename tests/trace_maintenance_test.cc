#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "sql/executor.h"
#include "tests/view_test_util.h"
#include "view/explain.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// End-to-end observability: EXPLAIN ANALYZE's per-transaction node
// breakdown must reproduce the paper's locality claims (Section 3.2), the
// trace's per-node task spans must show each method's fan-out shape, and
// tracing must never perturb the cost accounting.

/// Reset the global tracer around each test (it is process-wide state).
class TraceMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

// ---------------------------------------------- EXPLAIN ANALYZE (analysis)

TEST_F(TraceMaintenanceTest, AnalysisIsolatesOneTransaction) {
  TwoTableFixture fx(4, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
      .Check();
  // Dirty the global counters first: the analysis must still report only
  // the second transaction's work (before/after snapshot diffs, no Reset).
  fx.manager->InsertRow("A", fx.NextARow(3)).status().Check();
  std::vector<NodeCounters> dirty = fx.sys->cost().Snapshot();

  MaintenanceAnalysis analysis;
  fx.manager->ApplyDelta(DeltaBatch::Inserts("A", {fx.NextARow(5)}), &analysis)
      .status()
      .Check();

  EXPECT_EQ(analysis.table, "A");
  EXPECT_EQ(analysis.base_inserts, 1u);
  EXPECT_EQ(analysis.base_deletes, 0u);
  ASSERT_EQ(analysis.per_node.size(), 4u);
  // The diff must match the raw counters minus the pre-txn snapshot.
  std::vector<NodeCounters> now = fx.sys->cost().Snapshot();
  for (int n = 0; n < 4; ++n) {
    NodeCounters expect = now[n] - dirty[n];
    EXPECT_EQ(analysis.per_node[n].searches, expect.searches) << "node " << n;
    EXPECT_EQ(analysis.per_node[n].fetches, expect.fetches);
    EXPECT_EQ(analysis.per_node[n].inserts, expect.inserts);
    EXPECT_EQ(analysis.per_node[n].sends, expect.sends);
  }
  EXPECT_GT(analysis.total_workload, 0.0);
  EXPECT_GE(analysis.total_workload, analysis.response_time);
  EXPECT_GT(analysis.messages, 0u);
  ASSERT_EQ(analysis.views.size(), 1u);
  EXPECT_EQ(analysis.views[0].view, "JV");
  EXPECT_EQ(analysis.views[0].method, MaintenanceMethod::kNaive);
  EXPECT_EQ(analysis.views[0].rows_inserted, 2u);  // fanout = 2
  EXPECT_GE(analysis.views[0].nodes_touched, 1);
}

TEST_F(TraceMaintenanceTest, PerTxnNodesTouchedMatchesPaperLocality) {
  constexpr int kNodes = 8;
  auto analyze = [&](MaintenanceMethod method) {
    TwoTableFixture fx(kNodes, 10, 2);
    fx.manager->RegisterView(fx.MakeView("JV"), method).Check();
    // A prior transaction leaves every node's counters nonzero under the
    // naive method — per-txn isolation is what makes the claim testable.
    fx.manager->InsertRow("A", fx.NextARow(1)).status().Check();
    MaintenanceAnalysis analysis;
    fx.manager
        ->ApplyDelta(DeltaBatch::Inserts("A", {fx.NextARow(5)}), &analysis)
        .status()
        .Check();
    return analysis;
  };
  // Naive broadcasts the delta: every node probes.
  EXPECT_EQ(analyze(MaintenanceMethod::kNaive).nodes_touched, kNodes);
  // AR routes to the one node holding the matching partition: arrival node
  // + AR/join node + view node, some coinciding.
  EXPECT_LE(analyze(MaintenanceMethod::kAuxRelation).nodes_touched, 3);
  // GI: arrival + GI home + K owners + view node, K = matches = 2.
  EXPECT_LE(analyze(MaintenanceMethod::kGlobalIndex).nodes_touched, 2 + 2 * 2);
}

TEST_F(TraceMaintenanceTest, ExplainAnalyzeRendersPerNodeTable) {
  TwoTableFixture fx(4, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kAuxRelation)
      .Check();
  MaintenanceAnalysis analysis;
  fx.manager->ApplyDelta(DeltaBatch::Inserts("A", {fx.NextARow(5)}), &analysis)
      .status()
      .Check();
  std::string text = analysis.ToString();
  EXPECT_NE(text.find("EXPLAIN ANALYZE maintenance of 'A'"), std::string::npos);
  EXPECT_NE(text.find("searches"), std::string::npos);
  EXPECT_NE(text.find("view JV [AUX_RELATION]"), std::string::npos);
  EXPECT_NE(text.find("nodes_touched="), std::string::npos);
  std::string json = analysis.ToJson();
  EXPECT_NE(json.find("\"table\":\"A\""), std::string::npos);
  EXPECT_NE(json.find("\"per_node\":["), std::string::npos);
}

TEST_F(TraceMaintenanceTest, ExplainAnalyzeShowsRetryAttempts) {
  // Under wait-die, a maintenance transaction that loses to an older blocker
  // aborts and retries with backoff. EXPLAIN ANALYZE must surface how many
  // attempts the final report cost, how long the retry loop slept, and why
  // each failed attempt aborted.
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 200;
  cfg.maintain_max_attempts = 8;
  cfg.maintain_retry_base_us = 1000;
  ParallelSystem sys(cfg);
  ViewManager manager(&sys);
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  for (int64_t k = 0; k < 10; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
  }
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(manager.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());

  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sys.Abort(blocker).Check();
  });
  MaintenanceAnalysis analysis;
  Result<MaintenanceReport> result =
      manager.ApplyDelta(DeltaBatch::Inserts("A", {contested}), &analysis);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_GE(analysis.attempts, 2);
  EXPECT_GT(analysis.backoff_ns, 0u);
  ASSERT_EQ(analysis.attempt_aborts.size(),
            static_cast<size_t>(analysis.attempts - 1));
  for (const std::string& reason : analysis.attempt_aborts) {
    EXPECT_NE(reason.find("lock conflict"), std::string::npos) << reason;
  }
  std::string text = analysis.ToString();
  EXPECT_NE(text.find("retries:"), std::string::npos);
  EXPECT_NE(text.find("attempt 1 aborted:"), std::string::npos);
  std::string json = analysis.ToJson();
  EXPECT_NE(json.find("\"attempts\":"), std::string::npos);
  EXPECT_NE(json.find("\"attempt_aborts\":["), std::string::npos);
}

TEST_F(TraceMaintenanceTest, ExplainAnalyzeSingleAttemptStaysQuiet) {
  // No contention: the retry fields stay at their defaults and the rendered
  // plan does not mention retries at all.
  TwoTableFixture fx(4, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
      .Check();
  MaintenanceAnalysis analysis;
  fx.manager->ApplyDelta(DeltaBatch::Inserts("A", {fx.NextARow(5)}), &analysis)
      .status()
      .Check();
  EXPECT_EQ(analysis.attempts, 1);
  EXPECT_EQ(analysis.backoff_ns, 0u);
  EXPECT_TRUE(analysis.attempt_aborts.empty());
  EXPECT_EQ(analysis.ToString().find("retries:"), std::string::npos);
}

TEST_F(TraceMaintenanceTest, ExplainAnalyzeThroughSql) {
  TwoTableFixture fx(4, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
      .Check();
  sql::Executor exec(fx.manager.get());
  std::ostringstream os;
  exec.Execute("EXPLAIN ANALYZE INSERT INTO A VALUES (900, 5, 1)", os).Check();
  std::string out = os.str();
  EXPECT_NE(out.find("EXPLAIN ANALYZE maintenance of 'A'"), std::string::npos);
  EXPECT_NE(out.find("view JV [NAIVE]"), std::string::npos);
  // The row really went in (EXPLAIN ANALYZE executes, like PostgreSQL's).
  std::ostringstream os2;
  exec.Execute("EXPLAIN ANALYZE DELETE FROM A VALUES (900, 5, 1)", os2)
      .Check();
  EXPECT_NE(os2.str().find("(+0/-1 base rows)"), std::string::npos);
}

TEST_F(TraceMaintenanceTest, AnalysisUnpollutedByConcurrentTransactions) {
  // Regression: per-node attribution used to diff global CostTracker
  // snapshots around the transaction, so anything a *concurrent* maintenance
  // transaction did meanwhile was attributed to the bracketed one. The
  // per-txn meter must report the same per-node I/O for the same delta
  // whether the system is otherwise idle or busy on unrelated tables.
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  ParallelSystem sys(cfg);
  ViewManager manager(&sys);
  for (const char* base : {"A", "C"}) {
    sys.CreateTable(MakeTableDef(base, ASchema(), "a")).Check();
  }
  for (const char* dim : {"B", "D"}) {
    sys.CreateTable(MakeTableDef(dim, BSchema(), "b")).Check();
    for (int64_t k = 0; k < 10; ++k) {
      sys.Insert(dim, {Value{k}, Value{k % 5}, Value{k}}).Check();
    }
  }
  auto make_view = [](const char* name, const char* a, const char* b) {
    JoinViewDef def;
    def.name = name;
    def.bases = {{a, a}, {b, b}};
    def.edges = {{{a, "c"}, {b, "d"}}};
    def.partition_on = ColumnRef{a, "e"};
    return def;
  };
  ASSERT_TRUE(manager
                  .RegisterView(make_view("JV_AB", "A", "B"),
                                MaintenanceMethod::kAuxRelation)
                  .ok());
  ASSERT_TRUE(manager
                  .RegisterView(make_view("JV_CD", "C", "D"),
                                MaintenanceMethod::kAuxRelation)
                  .ok());

  // One warm-up insert/delete cycle so both measured runs see the same
  // physical pages (first-touch page allocations happen here).
  Row probe = {Value{100}, Value{1}, Value{1}};
  manager.InsertRow("A", probe).status().Check();
  manager.DeleteRow("A", probe).status().Check();

  MaintenanceAnalysis solo;
  manager.ApplyDelta(DeltaBatch::Inserts("A", {probe}), &solo)
      .status()
      .Check();
  manager.DeleteRow("A", probe).status().Check();

  // Noise: a second thread hammers the unrelated C/D view while we measure.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> noise_key{1000};
  std::thread noise([&] {
    while (!stop.load()) {
      int64_t k = noise_key.fetch_add(1);
      manager.InsertRow("C", {Value{k}, Value{k % 5}, Value{k}})
          .status()
          .Check();
    }
  });
  // Let the noise thread demonstrably run before and during the bracket.
  while (noise_key.load() < 1005) std::this_thread::yield();
  MaintenanceAnalysis conc;
  manager.ApplyDelta(DeltaBatch::Inserts("A", {probe}), &conc)
      .status()
      .Check();
  stop.store(true);
  noise.join();

  // Different tables, different lock fragments: no retries to excuse drift.
  EXPECT_EQ(conc.attempts, 1);
  ASSERT_EQ(conc.per_node.size(), solo.per_node.size());
  for (size_t n = 0; n < solo.per_node.size(); ++n) {
    EXPECT_EQ(conc.per_node[n].searches, solo.per_node[n].searches)
        << "node " << n;
    EXPECT_EQ(conc.per_node[n].fetches, solo.per_node[n].fetches)
        << "node " << n;
    EXPECT_EQ(conc.per_node[n].inserts, solo.per_node[n].inserts)
        << "node " << n;
    EXPECT_EQ(conc.per_node[n].sends, solo.per_node[n].sends) << "node " << n;
  }
  manager.CheckAllConsistent().Check();
}

// ----------------------------------------------------- trace fan-out shape

/// Nodes named in `span_name` task spans recorded since the last Clear().
std::set<int> TaskNodes(const char* span_name) {
  std::set<int> nodes;
  for (const TraceSpan& s : Tracer::Global().Snapshot()) {
    if (std::string(s.name) == span_name) nodes.insert(s.node);
  }
  return nodes;
}

int CountSpans(const char* span_name) {
  int n = 0;
  for (const TraceSpan& s : Tracer::Global().Snapshot()) {
    if (std::string(s.name) == span_name) ++n;
  }
  return n;
}

TEST_F(TraceMaintenanceTest, NaiveTraceShowsAllNodeFanOut) {
  constexpr int kNodes = 8;
  TwoTableFixture fx(kNodes, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
      .Check();
  Tracer::Global().Enable();
  Tracer::Global().Clear();
  fx.manager->InsertRow("A", fx.NextARow(5)).status().Check();
  Tracer::Global().Disable();
  // The broadcast probe phase ran a task span on every node.
  EXPECT_EQ(TaskNodes("probe_node").size(), static_cast<size_t>(kNodes));
  EXPECT_EQ(CountSpans("broadcast_step"), 1);
  EXPECT_EQ(CountSpans("routed_step"), 0);
  EXPECT_EQ(CountSpans("maintain_txn"), 1);
  EXPECT_EQ(CountSpans("maintain_view"), 1);
  // Task spans carry the per-node cost deltas: the probes did real work
  // (index searches when B is clustered on d, scan fetches when not).
  uint64_t probe_io = 0;
  for (const TraceSpan& s : Tracer::Global().Snapshot()) {
    if (std::string(s.name) == "probe_node") {
      EXPECT_TRUE(s.has_cost);
      probe_io += s.cost.searches + s.cost.fetches;
    }
  }
  EXPECT_GT(probe_io, 0u);
}

TEST_F(TraceMaintenanceTest, AuxTraceShowsSingleNodeRouting) {
  TwoTableFixture fx(8, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kAuxRelation)
      .Check();
  Tracer::Global().Enable();
  Tracer::Global().Clear();
  fx.manager->InsertRow("A", fx.NextARow(5)).status().Check();
  Tracer::Global().Disable();
  // The AR method routes each delta tuple to the single node that owns its
  // join-key partition.
  EXPECT_EQ(TaskNodes("probe_node").size(), 1u);
  EXPECT_GE(CountSpans("routed_step"), 1);
  EXPECT_EQ(CountSpans("broadcast_step"), 0);
}

TEST_F(TraceMaintenanceTest, GlobalIndexTraceShowsHomeThenOwners) {
  TwoTableFixture fx(8, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kGlobalIndex)
      .Check();
  Tracer::Global().Enable();
  Tracer::Global().Clear();
  fx.manager->InsertRow("A", fx.NextARow(5)).status().Check();
  Tracer::Global().Disable();
  // Phase 1: the GI lookup runs on the delta key's single home node.
  EXPECT_EQ(TaskNodes("gi_probe_node").size(), 1u);
  // Phase 2: fetches go to the owner nodes of the K = 2 matching tuples.
  size_t owners = TaskNodes("gi_fetch_node").size();
  EXPECT_GE(owners, 1u);
  EXPECT_LE(owners, 2u);
  EXPECT_GE(CountSpans("gi_lookup"), 1);
  EXPECT_GE(CountSpans("gi_fetch"), 1);
}

// ------------------------------------------------- accounting invariance

TEST_F(TraceMaintenanceTest, CountersBitIdenticalTracingOnAndOff) {
  auto run = [](bool traced) {
    if (traced) {
      Tracer::Global().Enable();
    } else {
      Tracer::Global().Disable();
    }
    TwoTableFixture fx(8, 10, 2);
    for (MaintenanceMethod method :
         {MaintenanceMethod::kNaive, MaintenanceMethod::kAuxRelation,
          MaintenanceMethod::kGlobalIndex}) {
      JoinViewDef def = fx.MakeView(std::string("JV_") +
                                    MaintenanceMethodToString(method));
      fx.manager->RegisterView(def, method).Check();
    }
    MaintenanceAnalysis analysis;
    fx.manager
        ->ApplyDelta(DeltaBatch::Inserts(
                         "A", {{Value{500}, Value{5}, Value{1}},
                               {Value{501}, Value{7}, Value{2}}}),
                     &analysis)
        .status()
        .Check();
    Tracer::Global().Disable();
    return fx.sys->cost().Snapshot();
  };
  std::vector<NodeCounters> off = run(false);
  std::vector<NodeCounters> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t n = 0; n < off.size(); ++n) {
    EXPECT_EQ(off[n].searches, on[n].searches) << "node " << n;
    EXPECT_EQ(off[n].fetches, on[n].fetches) << "node " << n;
    EXPECT_EQ(off[n].inserts, on[n].inserts) << "node " << n;
    EXPECT_EQ(off[n].sends, on[n].sends) << "node " << n;
    EXPECT_EQ(off[n].bytes_sent, on[n].bytes_sent) << "node " << n;
    EXPECT_EQ(off[n].base_writes, on[n].base_writes) << "node " << n;
    EXPECT_EQ(off[n].structure_writes, on[n].structure_writes) << "node " << n;
    EXPECT_EQ(off[n].view_writes, on[n].view_writes) << "node " << n;
  }
}

// ------------------------------------------------------------ trace export

TEST_F(TraceMaintenanceTest, ExportedTraceIsLoadableChromeJson) {
  TwoTableFixture fx(4, 10, 2);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
      .Check();
  Tracer::Global().Enable();
  Tracer::Global().Clear();
  fx.manager->InsertRow("A", fx.NextARow(5)).status().Check();
  Tracer::Global().Disable();
  std::string path = ::testing::TempDir() + "pjvm_trace_test.json";
  Tracer::Global().ExportChromeTrace(path).Check();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"probe_node\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(
      Tracer::Global().ExportChromeTrace("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace pjvm
