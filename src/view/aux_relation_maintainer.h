#ifndef PJVM_VIEW_AUX_RELATION_MAINTAINER_H_
#define PJVM_VIEW_AUX_RELATION_MAINTAINER_H_

#include "view/maintainer.h"

namespace pjvm {

/// \brief The paper's auxiliary relation method (Section 2.1.2).
///
/// Every plan step probes a structure partitioned on the step's join
/// attribute: the base table itself when it is already partitioned that way,
/// or its auxiliary relation (a selection/projection of the base,
/// re-partitioned on the join attribute with a clustered index). Each
/// partial tuple therefore travels to exactly one node per step — the
/// single-node operations that make this the cheapest method for small
/// updates.
///
/// The auxiliary relations of the *updated* base are maintained by
/// ViewManager before this runs (they are shared across views); the seeds
/// are placed at the node the structure-maintenance ship already delivered
/// the tuple to, so no second SEND is charged.
class AuxRelationMaintainer : public Maintainer {
 public:
  using Maintainer::Maintainer;

  MaintenanceMethod method() const override {
    return MaintenanceMethod::kAuxRelation;
  }

 protected:
  Status ProcessSign(uint64_t txn, int updated_base,
                     const MaintenancePlan& plan, const std::vector<Row>& rows,
                     const std::vector<GlobalRowId>& gids, bool is_delete,
                     MaintenanceReport* report) override;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_AUX_RELATION_MAINTAINER_H_
