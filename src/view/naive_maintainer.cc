#include "view/naive_maintainer.h"

namespace pjvm {

Status NaiveMaintainer::ProcessSign(uint64_t txn, int updated_base,
                                    const MaintenancePlan& plan,
                                    const std::vector<Row>& rows,
                                    const std::vector<GlobalRowId>& gids,
                                    bool is_delete, MaintenanceReport* report) {
  PJVM_ASSIGN_OR_RETURN(
      std::vector<Partial> partials,
      SeedPartials(updated_base, rows, gids, /*colocate_col=*/-1));
  for (const PlanStep& step : plan.steps) {
    const TableDef& target_def = bound().base_def(step.target_base);
    bool co_partitioned = target_def.partition.is_hash() &&
                          target_def.PartitionColumn() == step.target_col;
    if (co_partitioned) {
      // Case 1: the matching tuples live at one known node per key.
      PJVM_ASSIGN_OR_RETURN(partials, RoutedStep(txn, step, BaseProbeTarget(step),
                                                 partials, report));
    } else {
      // Case 2: the matching tuples could be anywhere; go everywhere.
      PJVM_ASSIGN_OR_RETURN(partials, BroadcastStep(txn, step, partials, report));
    }
    if (partials.empty()) return Status::OK();
  }
  return EmitToView(txn, partials, is_delete, report);
}

}  // namespace pjvm
