#include "engine/system.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace pjvm {

ParallelSystem::ParallelSystem(SystemConfig config)
    : config_(config),
      cost_(config.num_nodes, config.weights),
      network_(config.num_nodes, &cost_) {
  // PJVM_TRACE=1 enables tracing; any other non-"0" value is also taken as
  // the export path, so `PJVM_TRACE=/tmp/run.trace.json ./bench_x` needs no
  // code changes. Config fields win over the environment when set.
  if (const char* env = std::getenv("PJVM_TRACE");
      env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    config_.trace_enabled = true;
    if (std::string(env) != "1" && config_.trace_path.empty()) {
      config_.trace_path = env;
    }
  }
  if (config_.trace_enabled) {
    Tracer::Global().Enable();
    Tracer::Global().SetCurrentThreadName("coordinator");
  }
  cost_.SetIoStallNanos(config_.io_stall_ns);
  locks_.set_policy(config_.lock_policy);
  locks_.set_wait_timeout_ms(config_.lock_wait_timeout_ms);
  locks_.set_num_shards(config_.lock_shards);
  locks_.set_escalation_threshold(config_.lock_escalation_threshold);
  nodes_.reserve(config_.num_nodes);
  LockManager* locks = config_.enable_locking ? &locks_ : nullptr;
  for (int i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, &cost_, &txns_, locks));
    nodes_.back()->latch().set_rw_enabled(config_.rw_latches);
    nodes_.back()->wal().ConfigureForce(config_.wal_force_ns,
                                        config_.group_commit,
                                        config_.group_commit_window_us);
  }
  executor_ = std::make_unique<NodeExecutor>(
      config_.num_nodes, /*inline_mode=*/!config_.parallel_execution);
}

ParallelSystem::~ParallelSystem() {
  executor_->Shutdown();
  // Workers are joined: the trace is quiescent and safe to export. An
  // unwritable path is not worth aborting a teardown over.
  if (config_.trace_enabled && !config_.trace_path.empty()) {
    Status st = Tracer::Global().ExportChromeTrace(config_.trace_path);
    if (!st.ok()) std::fprintf(stderr, "pjvm: %s\n", st.ToString().c_str());
  }
}

Status ParallelSystem::CreateTable(TableDef def) {
  PJVM_RETURN_NOT_OK(catalog_.AddTable(def));
  for (auto& node : nodes_) {
    Status st = node->CreateFragment(def, config_.rows_per_page);
    if (!st.ok()) {
      catalog_.DropTable(def.name).Check();
      return st;
    }
  }
  return Status::OK();
}

Status ParallelSystem::DropTable(const std::string& name) {
  PJVM_RETURN_NOT_OK(catalog_.DropTable(name));
  for (auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->DropFragment(name));
  }
  {
    std::lock_guard<std::mutex> lock(round_robin_mu_);
    round_robin_.erase(name);
  }
  return Status::OK();
}

int ParallelSystem::HomeNodeForRow(const TableDef& def, const Row& row) {
  if (def.partition.is_hash()) {
    int col = def.PartitionColumn();
    return HomeNodeForKey(row[col]);
  }
  std::lock_guard<std::mutex> lock(round_robin_mu_);
  uint64_t& counter = round_robin_[def.name];
  return static_cast<int>(counter++ % config_.num_nodes);
}

Status ParallelSystem::Insert(const std::string& table, Row row,
                              uint64_t txn_id) {
  return InsertReturningId(table, std::move(row), txn_id).status();
}

Result<GlobalRowId> ParallelSystem::InsertReturningId(const std::string& table,
                                                      Row row,
                                                      uint64_t txn_id) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  PJVM_RETURN_NOT_OK(def->schema.ValidateRow(row));
  int target = HomeNodeForRow(*def, row);
  PJVM_ASSIGN_OR_RETURN(LocalRowId lrid,
                        nodes_[target]->Insert(txn_id, table, std::move(row)));
  return GlobalRowId{target, lrid};
}

Result<GlobalRowId> ParallelSystem::LocateExact(const std::string& table,
                                                const Row& row) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  auto try_node = [&](int i) -> Result<GlobalRowId> {
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    const TableFragment* frag = nodes_[i]->fragment(table);
    cost_.ChargeSearch(i);
    PJVM_ASSIGN_OR_RETURN(LocalRowId lrid, frag->FindExact(row));
    return GlobalRowId{i, lrid};
  };
  if (def->partition.is_hash()) {
    return try_node(HomeNodeForKey(row[def->PartitionColumn()]));
  }
  for (int i = 0; i < config_.num_nodes; ++i) {
    Result<GlobalRowId> found = try_node(i);
    if (found.ok()) return found;
    if (!found.status().IsNotFound()) return found;
  }
  return Status::NotFound("row not found in '" + table +
                          "' on any node: " + RowToString(row));
}

Status ParallelSystem::CreateIndexOn(const std::string& table,
                                     const std::string& column,
                                     bool clustered) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  if (def->HasIndexOn(column)) return Status::OK();
  PJVM_RETURN_NOT_OK(
      catalog_.AddIndexToTable(table, IndexSpec{column, clustered}));
  PJVM_ASSIGN_OR_RETURN(int col, def->schema.ColumnIndex(column));
  for (auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->fragment(table)->CreateIndex(col, clustered));
  }
  return Status::OK();
}

Status ParallelSystem::InsertMany(const std::string& table,
                                  const std::vector<Row>& rows,
                                  uint64_t txn_id) {
  return InsertManyReturningIds(table, rows, txn_id).status();
}

Result<std::vector<GlobalRowId>> ParallelSystem::InsertManyReturningIds(
    const std::string& table, const std::vector<Row>& rows, uint64_t txn_id) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  // Validate and place every row in the caller's thread first: round-robin
  // placement consumes the per-table counter in batch order, exactly as a
  // sequence of single-row Inserts would.
  std::vector<std::vector<size_t>> by_node(config_.num_nodes);
  for (size_t i = 0; i < rows.size(); ++i) {
    PJVM_RETURN_NOT_OK(def->schema.ValidateRow(rows[i]));
    by_node[HomeNodeForRow(*def, rows[i])].push_back(i);
  }
  std::vector<int> targets;
  for (int n = 0; n < config_.num_nodes; ++n) {
    if (!by_node[n].empty()) targets.push_back(n);
  }
  // One task per home node; each worker inserts its rows in batch order, so
  // per-node local row ids, WAL contents, and cost charges are identical to
  // the sequential run.
  std::vector<GlobalRowId> gids(rows.size());
  Status st = executor_->RunOnNodes(targets, [&](int n) -> Status {
    SpanGuard span("insert_batch", "task", n, &cost_);
    span.set_detail(table + " x" + std::to_string(by_node[n].size()));
    for (size_t i : by_node[n]) {
      PJVM_ASSIGN_OR_RETURN(LocalRowId lrid,
                            nodes_[n]->Insert(txn_id, table, rows[i]));
      gids[i] = GlobalRowId{n, lrid};
    }
    return Status::OK();
  });
  PJVM_RETURN_NOT_OK(st);
  return gids;
}

Status ParallelSystem::DeleteExact(const std::string& table, const Row& row,
                                   uint64_t txn_id) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  if (def->partition.is_hash()) {
    int target = HomeNodeForRow(*def, row);
    return nodes_[target]->DeleteExact(txn_id, table, row);
  }
  // Round-robin table: the row can be anywhere; try each node.
  for (auto& node : nodes_) {
    Status st = node->DeleteExact(txn_id, table, row);
    if (st.ok()) return st;
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound("row not found in '" + table +
                          "' on any node: " + RowToString(row));
}

std::vector<Row> ParallelSystem::ScanAll(const std::string& table) const {
  std::vector<std::vector<Row>> per_node(config_.num_nodes);
  executor_->RunOnAllNodes([&](int i) -> Status {
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    const TableFragment* frag = nodes_[i]->fragment(table);
    if (frag != nullptr) per_node[i] = frag->AllRows();
    return Status::OK();
  }).Check();
  std::vector<Row> rows;
  for (std::vector<Row>& part : per_node) {
    rows.insert(rows.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return rows;
}

size_t ParallelSystem::RowCount(const std::string& table) const {
  size_t count = 0;
  for (const auto& node : nodes_) {
    NodeLatchGuard latch(*node, LatchMode::kShared);
    const TableFragment* frag = node->fragment(table);
    if (frag != nullptr) count += frag->num_rows();
  }
  return count;
}

size_t ParallelSystem::TableBytes(const std::string& table) const {
  size_t bytes = 0;
  for (const auto& node : nodes_) {
    NodeLatchGuard latch(*node, LatchMode::kShared);
    const TableFragment* frag = node->fragment(table);
    if (frag != nullptr) bytes += frag->byte_size();
  }
  return bytes;
}

size_t ParallelSystem::TablePages(const std::string& table) const {
  size_t pages = 0;
  for (const auto& node : nodes_) {
    NodeLatchGuard latch(*node, LatchMode::kShared);
    const TableFragment* frag = node->fragment(table);
    if (frag != nullptr) pages += frag->num_pages();
  }
  return pages;
}

Result<std::vector<Row>> ParallelSystem::SelectEq(const std::string& table,
                                                  const std::string& column,
                                                  const Value& key) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  PJVM_ASSIGN_OR_RETURN(int col, def->schema.ColumnIndex(column));
  auto probe_node = [&](int i, std::vector<Row>* out) -> Status {
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    TableFragment* frag = nodes_[i]->fragment(table);
    if (frag->HasIndexOn(col)) {
      PJVM_ASSIGN_OR_RETURN(ProbeResult r, nodes_[i]->IndexProbe(table, col, key));
      out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                  std::make_move_iterator(r.rows.end()));
    } else {
      // Full scan: charge one fetch per page read.
      cost_.ChargeIOPages(i, frag->num_pages());
      ProbeResult r = frag->ScanEq(col, key);
      out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                  std::make_move_iterator(r.rows.end()));
    }
    return Status::OK();
  };
  if (def->partition.is_hash() && def->partition.column == column) {
    std::vector<Row> out;
    PJVM_RETURN_NOT_OK(probe_node(HomeNodeForKey(key), &out));
    return out;
  }
  // Fan-out: every node probes its fragment on its own worker; results are
  // concatenated in node order, matching the sequential loop exactly.
  std::vector<std::vector<Row>> per_node(config_.num_nodes);
  PJVM_RETURN_NOT_OK(executor_->RunOnAllNodes([&](int i) {
    SpanGuard span("select_eq", "task", i, &cost_);
    return probe_node(i, &per_node[i]);
  }));
  std::vector<Row> out;
  for (std::vector<Row>& part : per_node) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

Result<std::vector<Row>> ParallelSystem::SelectRange(const std::string& table,
                                                     const std::string& column,
                                                     const Value& lo,
                                                     const Value& hi) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  PJVM_ASSIGN_OR_RETURN(int col, def->schema.ColumnIndex(column));
  std::vector<Row> out;
  if (hi < lo) return out;
  // Hash partitioning cannot route a range: every node range-scans its own
  // fragment on its worker thread.
  std::vector<std::vector<Row>> per_node(config_.num_nodes);
  PJVM_RETURN_NOT_OK(executor_->RunOnAllNodes([&](int i) -> Status {
    SpanGuard span("select_range", "task", i, &cost_);
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    std::vector<Row>& local = per_node[i];
    TableFragment* frag = nodes_[i]->fragment(table);
    const LocalIndex* index = frag->FindIndex(col);
    if (index != nullptr) {
      cost_.ChargeSearch(i);  // One seek to the range's start.
      size_t delivered = 0;
      index->tree.ScanRange(lo, hi, [&](const Value&, const LocalRowId& lrid) {
        local.push_back(*frag->Get(lrid));
        ++delivered;
        return true;
      });
      cost_.ChargeFetch(i, delivered);
    } else {
      cost_.ChargeIOPages(i, frag->num_pages());
      frag->ForEach([&](LocalRowId, const Row& row) {
        if (lo <= row[col] && row[col] <= hi) local.push_back(row);
        return true;
      });
    }
    return Status::OK();
  }));
  for (std::vector<Row>& part : per_node) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

Status ParallelSystem::Commit(uint64_t txn_id) {
  if (txn_id == kAutoCommitTxnId) return Status::OK();
  SpanGuard span("commit_2pc", "txn");
  span.set_detail("txn " + std::to_string(txn_id));
  if (txns_.ShouldFailAt(FailurePoint::kBeforePrepare)) {
    Crash();
    return Status::Aborted("injected crash before prepare");
  }
  PJVM_RETURN_NOT_OK(txns_.MarkPreparing(txn_id));
  // Phase 1: every participant durably prepares — the prepare force covers
  // the transaction's earlier data records on that node too (they precede
  // the prepare in the same log). With group commit, concurrent committers
  // share one force round per node. Phase-2 commit records need no force:
  // the commit decision lives in the coordinator (presumed abort), and
  // replay is gated by TxnManager::IsCommitted, not by commit records.
  const auto participant_set = txns_.participants(txn_id);
  const std::vector<int> participants(participant_set.begin(),
                                      participant_set.end());
  std::vector<uint64_t> prepare_lsns;
  prepare_lsns.reserve(participants.size());
  for (int node_id : participants) {
    prepare_lsns.push_back(nodes_[node_id]->wal().Append(
        LogRecord{0, txn_id, LogRecordType::kPrepare, "", {}}));
  }
  if (config_.group_commit && participants.size() > 1) {
    // The prepares land on independent per-node logs, so their forces can
    // overlap — the textbook parallel phase 1. Only worthwhile when forces
    // actually wait (group-commit rounds); in per-txn-force mode the extra
    // threads would buy nothing the device model doesn't serialize anyway.
    std::vector<Status> statuses(participants.size(), Status::OK());
    std::vector<std::thread> forcers;
    forcers.reserve(participants.size() - 1);
    for (size_t i = 1; i < participants.size(); ++i) {
      forcers.emplace_back([this, &participants, &prepare_lsns, &statuses, i] {
        statuses[i] = nodes_[participants[i]]->wal().Force(prepare_lsns[i]);
      });
    }
    statuses[0] = nodes_[participants[0]]->wal().Force(prepare_lsns[0]);
    for (auto& th : forcers) th.join();
    for (const Status& st : statuses) PJVM_RETURN_NOT_OK(st);
  } else {
    for (size_t i = 0; i < participants.size(); ++i) {
      PJVM_RETURN_NOT_OK(nodes_[participants[i]]->wal().Force(prepare_lsns[i]));
    }
  }
  if (txns_.ShouldFailAt(FailurePoint::kAfterPrepare)) {
    Crash();
    return Status::Aborted("injected crash after prepare (presumed abort)");
  }
  // Commit point: the coordinator's durable decision.
  PJVM_RETURN_NOT_OK(txns_.LogCommitDecision(txn_id));
  if (txns_.ShouldFailAt(FailurePoint::kAfterDecision)) {
    Crash();
    return Status::Aborted("injected crash after commit decision");
  }
  // Phase 2: participants learn the outcome.
  for (int node_id : txns_.participants(txn_id)) {
    nodes_[node_id]->wal().Append(
        LogRecord{0, txn_id, LogRecordType::kCommit, "", {}});
  }
  txns_.DiscardUndo(txn_id);
  locks_.ReleaseAll(txn_id);  // Strict 2PL: everything released at commit.
  // Working state is done; the durable commit decision survives in the
  // TxnManager's decision set until a checkpoint prunes it.
  txns_.Forget(txn_id);
  return Status::OK();
}

Status ParallelSystem::Abort(uint64_t txn_id) {
  if (txn_id == kAutoCommitTxnId) {
    return Status::InvalidArgument("cannot abort the autocommit pseudo-txn");
  }
  PJVM_RETURN_NOT_OK(txns_.MarkAborted(txn_id));
  for (const UndoOp& op : txns_.TakeUndoReversed(txn_id)) {
    PJVM_RETURN_NOT_OK(nodes_[op.node]->ApplyUndo(op));
  }
  for (int node_id : txns_.participants(txn_id)) {
    nodes_[node_id]->wal().Append(
        LogRecord{0, txn_id, LogRecordType::kAbort, "", {}});
  }
  locks_.ReleaseAll(txn_id);
  txns_.Forget(txn_id);
  return Status::OK();
}

Status ParallelSystem::Checkpoint() {
  if (txns_.HasActive()) {
    return Status::Aborted(
        "checkpoint refused: transactions are in flight (quiesce first)");
  }
  for (auto& node : nodes_) node->Checkpoint();
  // Every WAL is truncated: no surviving record can mention a pre-checkpoint
  // txn id, so the commit-decision set is prunable up to the id low-water
  // mark — the durable-state analogue of TxnManager::Forget.
  txns_.PruneCommittedBelow(txns_.next_txn_id());
  return Status::OK();
}

void ParallelSystem::Crash() {
  for (auto& node : nodes_) {
    // The unforced log tail is volatile: a crash loses it (only visible
    // when wal_force_ns > 0; with free forcing every append is durable).
    node->wal().DiscardUnforced();
    node->WipeFragments();
  }
  txns_.CrashAndRecover();
  locks_.Clear();
}

Status ParallelSystem::Recover() {
  for (auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->RecreateFragments(catalog_, config_.rows_per_page));
    PJVM_RETURN_NOT_OK(node->RestoreCheckpoint());
  }
  Status replay_status = Status::OK();
  for (auto& node : nodes_) {
    node->wal().ReplayCommitted(
        [&](uint64_t txn_id) { return txns_.IsCommitted(txn_id); },
        [&](const LogRecord& rec) {
          // Records for tables dropped after the write are obsolete: the
          // drop discarded their data, so replay skips them.
          if (!catalog_.Has(rec.table)) return;
          Status st = node->ApplyLogRecord(rec);
          if (!st.ok() && replay_status.ok()) replay_status = st;
        });
    PJVM_RETURN_NOT_OK(replay_status);
  }
  return Status::OK();
}

Status ParallelSystem::CheckInvariants() const {
  for (const auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->CheckInvariants());
  }
  return Status::OK();
}

}  // namespace pjvm
