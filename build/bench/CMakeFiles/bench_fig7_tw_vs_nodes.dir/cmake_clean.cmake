file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tw_vs_nodes.dir/bench_fig7_tw_vs_nodes.cc.o"
  "CMakeFiles/bench_fig7_tw_vs_nodes.dir/bench_fig7_tw_vs_nodes.cc.o.d"
  "bench_fig7_tw_vs_nodes"
  "bench_fig7_tw_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tw_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
