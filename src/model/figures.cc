#include "model/figures.h"

#include <cmath>
#include <iomanip>

namespace pjvm::model {

namespace {

double Ceil(double x) { return std::ceil(x - 1e-9); }

/// The five method variants every model figure plots.
struct Variants {
  Series aux{"aux_relation", {}, {}};
  Series naive_nc{"naive_nonclustered", {}, {}};
  Series naive_c{"naive_clustered", {}, {}};
  Series gi_nc{"gi_dist_nonclustered", {}, {}};
  Series gi_c{"gi_dist_clustered", {}, {}};

  void Push(double x, double aux_y, double nnc, double nc, double gnc,
            double gc) {
    aux.xs.push_back(x);
    aux.ys.push_back(aux_y);
    naive_nc.xs.push_back(x);
    naive_nc.ys.push_back(nnc);
    naive_c.xs.push_back(x);
    naive_c.ys.push_back(nc);
    gi_nc.xs.push_back(x);
    gi_nc.ys.push_back(gnc);
    gi_c.xs.push_back(x);
    gi_c.ys.push_back(gc);
  }

  std::vector<Series> Take() { return {aux, naive_nc, naive_c, gi_nc, gi_c}; }
};

}  // namespace

ModelParams PaperParams() {
  ModelParams p;
  p.b_pages = 6400;
  p.memory_pages = 100;
  p.fanout = 10;
  return p;
}

void PrintFigure(const Figure& figure, std::ostream& os) {
  os << "# " << figure.title << "\n";
  os << "# x = " << figure.xlabel << ", y = " << figure.ylabel << "\n";
  os << std::setw(12) << figure.xlabel;
  for (const Series& s : figure.series) os << std::setw(24) << s.label;
  os << "\n";
  if (figure.series.empty()) return;
  size_t rows = figure.series[0].xs.size();
  for (size_t i = 0; i < rows; ++i) {
    os << std::setw(12) << figure.series[0].xs[i];
    for (const Series& s : figure.series) {
      os << std::setw(24) << std::fixed << std::setprecision(2) << s.ys[i];
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
}

Figure MakeFigure7(ModelParams base) {
  Figure fig;
  fig.title = "Figure 7: TW vs number of data server nodes (single insert)";
  fig.xlabel = "nodes";
  fig.ylabel = "TW in I/Os";
  Variants v;
  for (int l = 2; l <= 1024; l *= 2) {
    ModelParams p = base;
    p.num_nodes = l;
    v.Push(l, TwAuxRelation(p), TwNaive(p, false), TwNaive(p, true),
           TwGlobalIndex(p, false), TwGlobalIndex(p, true));
  }
  fig.series = v.Take();
  return fig;
}

Figure MakeFigure8(ModelParams base) {
  Figure fig;
  fig.title = "Figure 8: TW vs join tuples generated N (L = 32)";
  fig.xlabel = "fanout_N";
  fig.ylabel = "TW in I/Os";
  Variants v;
  base.num_nodes = 32;
  for (double n : {1, 2, 5, 10, 20, 30, 40, 60, 80, 100}) {
    ModelParams p = base;
    p.fanout = n;
    v.Push(n, TwAuxRelation(p), TwNaive(p, false), TwNaive(p, true),
           TwGlobalIndex(p, false), TwGlobalIndex(p, true));
  }
  fig.series = v.Take();
  return fig;
}

namespace {

Figure ResponseFigure(const ModelParams& base, double a_tuples,
                      const std::string& title) {
  Figure fig;
  fig.title = title;
  fig.xlabel = "nodes";
  fig.ylabel = "response time in I/Os";
  Variants v;
  for (int l = 2; l <= 1024; l *= 2) {
    ModelParams p = base;
    p.num_nodes = l;
    v.Push(l, RtAux(p, a_tuples), RtNaive(p, a_tuples, false),
           RtNaive(p, a_tuples, true), RtGi(p, a_tuples, false),
           RtGi(p, a_tuples, true));
  }
  fig.series = v.Take();
  return fig;
}

}  // namespace

Figure MakeFigure9(ModelParams base, double a_tuples) {
  return ResponseFigure(
      base, a_tuples,
      "Figure 9: execution time of one transaction with 400 tuples (index "
      "join)");
}

Figure MakeFigure10(ModelParams base, double a_tuples) {
  return ResponseFigure(
      base, a_tuples,
      "Figure 10: execution time of one transaction with 6,500 tuples "
      "(sort-merge join)");
}

namespace {

Figure SweepFigure(ModelParams base, const std::vector<double>& sweep,
                   const std::string& title) {
  Figure fig;
  fig.title = title;
  fig.xlabel = "inserted";
  fig.ylabel = "response time in I/Os";
  base.num_nodes = 128;
  Variants v;
  for (double a : sweep) {
    v.Push(a, RtAux(base, a), RtNaive(base, a, false), RtNaive(base, a, true),
           RtGi(base, a, false), RtGi(base, a, true));
  }
  fig.series = v.Take();
  return fig;
}

}  // namespace

Figure MakeFigure11(ModelParams base) {
  std::vector<double> sweep;
  for (double a = 1; a <= 7000; a = a < 100 ? a + 24 : a + 250) {
    sweep.push_back(a);
  }
  return SweepFigure(base, sweep,
                     "Figure 11: execution time vs tuples inserted (L = 128)");
}

Figure MakeFigure12(ModelParams base) {
  std::vector<double> sweep;
  for (double a = 1; a <= 300; a += 7) sweep.push_back(a);
  return SweepFigure(
      base, sweep,
      "Figure 12: execution time vs tuples inserted, detail (L = 128)");
}

double PredictJv1(int num_nodes, const TpcrExperimentParams& p,
                  bool aux_method) {
  double a = p.delta_tuples;
  if (aux_method) {
    // customer is partitioned on custkey (the join attribute), so each delta
    // tuple probes the co-located clustered orders_1 locally: per node,
    // ceil(A/L) searches and nothing else.
    return Ceil(a / num_nodes);
  }
  // Naive: every node searches its orders fragment for every delta tuple
  // through the non-clustered custkey index, then fetches its share of the
  // matches.
  return a + Ceil(a * p.orders_fanout / num_nodes);
}

double PredictJv2(int num_nodes, const TpcrExperimentParams& p,
                  bool aux_method) {
  double stage1 = PredictJv1(num_nodes, p, aux_method);
  double partials = p.delta_tuples * p.orders_fanout;
  if (aux_method) {
    // Route each (customer x orders) tuple to lineitem_1's orderkey home:
    // ceil(partials/L) clustered searches per node.
    return stage1 + Ceil(partials / num_nodes);
  }
  return stage1 + partials +
         Ceil(partials * p.lineitem_fanout / num_nodes);
}

Figure MakeFigure13(TpcrExperimentParams p) {
  Figure fig;
  fig.title =
      "Figure 13: predicted view maintenance time (TPC-R, 128 inserted "
      "customers)";
  fig.xlabel = "nodes";
  fig.ylabel = "predicted per-node I/Os";
  Series ar1{"AR_JV1", {}, {}}, nv1{"naive_JV1", {}, {}};
  Series ar2{"AR_JV2", {}, {}}, nv2{"naive_JV2", {}, {}};
  for (int l : {2, 4, 8}) {
    ar1.xs.push_back(l);
    ar1.ys.push_back(PredictJv1(l, p, true));
    nv1.xs.push_back(l);
    nv1.ys.push_back(PredictJv1(l, p, false));
    ar2.xs.push_back(l);
    ar2.ys.push_back(PredictJv2(l, p, true));
    nv2.xs.push_back(l);
    nv2.ys.push_back(PredictJv2(l, p, false));
  }
  fig.series = {ar1, nv1, ar2, nv2};
  return fig;
}

}  // namespace pjvm::model
