#include "view/planner.h"

#include <algorithm>

namespace pjvm {

namespace {

/// Candidate edges that connect a filled base to an unfilled one, expressed
/// as (source base/col, target base/col).
struct Candidate {
  int source_base;
  int source_col;
  int target_base;
  int target_col;
  int edge_index;
};

std::vector<Candidate> FindCandidates(const BoundView& view,
                                      const std::vector<bool>& filled) {
  std::vector<Candidate> out;
  const auto& edges = view.bound_edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const BoundEdge& e = edges[i];
    if (filled[e.left_base] && !filled[e.right_base]) {
      out.push_back({e.left_base, e.left_col, e.right_base, e.right_col,
                     static_cast<int>(i)});
    } else if (filled[e.right_base] && !filled[e.left_base]) {
      out.push_back({e.right_base, e.right_col, e.left_base, e.left_col,
                     static_cast<int>(i)});
    }
  }
  return out;
}

PlanStep MakeStep(const BoundView& view, const Candidate& c,
                  const std::vector<bool>& filled) {
  PlanStep step;
  step.target_base = c.target_base;
  step.target_col = c.target_col;
  step.source_base = c.source_base;
  step.source_col = c.source_col;
  // Every other edge touching the target whose far side is already filled
  // becomes a residual check.
  const auto& edges = view.bound_edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (static_cast<int>(i) == c.edge_index) continue;
    const BoundEdge& e = edges[i];
    if ((e.left_base == c.target_base && filled[e.right_base]) ||
        (e.right_base == c.target_base && filled[e.left_base])) {
      step.residual.push_back(e);
    }
  }
  return step;
}

void Enumerate(const BoundView& view, std::vector<bool>& filled,
               MaintenancePlan& partial, std::vector<MaintenancePlan>& out) {
  if (partial.steps.size() + 1 == static_cast<size_t>(view.num_bases())) {
    out.push_back(partial);
    return;
  }
  std::vector<Candidate> candidates = FindCandidates(view, filled);
  // Deduplicate by target base: two edges reaching the same new base via
  // different keys are distinct access choices, so keep both.
  for (const Candidate& c : candidates) {
    partial.steps.push_back(MakeStep(view, c, filled));
    filled[c.target_base] = true;
    Enumerate(view, filled, partial, out);
    filled[c.target_base] = false;
    partial.steps.pop_back();
  }
}

}  // namespace

std::string MaintenancePlan::ToString(const BoundView& view) const {
  std::string out =
      "delta(" + view.def().bases[updated_base].alias + ")";
  for (const PlanStep& s : steps) {
    out += " -> " + view.def().bases[s.target_base].alias + " on " +
           view.def().bases[s.source_base].alias + "." +
           view.base_def(s.source_base).schema.column(s.source_col).name + "=" +
           view.def().bases[s.target_base].alias + "." +
           view.base_def(s.target_base).schema.column(s.target_col).name;
    if (!s.residual.empty()) {
      out += " (+" + std::to_string(s.residual.size()) + " residual)";
    }
  }
  return out;
}

namespace {

/// Shared greedy loop: `score(candidate)` returns the estimated fanout used
/// to rank candidates.
Result<MaintenancePlan> GreedyPlan(
    const BoundView& view, int updated_base,
    const std::function<double(const Candidate&)>& score) {
  if (updated_base < 0 || updated_base >= view.num_bases()) {
    return Status::InvalidArgument("planner: bad updated base index");
  }
  MaintenancePlan plan;
  plan.updated_base = updated_base;
  std::vector<bool> filled(view.num_bases(), false);
  filled[updated_base] = true;
  for (int k = 1; k < view.num_bases(); ++k) {
    std::vector<Candidate> candidates = FindCandidates(view, filled);
    if (candidates.empty()) {
      return Status::Internal("planner: join graph disconnected from base " +
                              std::to_string(updated_base));
    }
    const Candidate* best = &candidates[0];
    double best_fanout = score(*best);
    for (size_t i = 1; i < candidates.size(); ++i) {
      double f = score(candidates[i]);
      if (f < best_fanout) {
        best = &candidates[i];
        best_fanout = f;
      }
    }
    plan.steps.push_back(MakeStep(view, *best, filled));
    filled[best->target_base] = true;
  }
  return plan;
}

}  // namespace

Result<MaintenancePlan> PlanMaintenance(const BoundView& view, int updated_base,
                                        const FanoutFn& fanout) {
  return GreedyPlan(view, updated_base, [&](const Candidate& c) {
    return fanout(c.target_base, c.target_col);
  });
}

Result<MaintenancePlan> PlanMaintenanceForDelta(
    const BoundView& view, int updated_base, const std::vector<Row>& delta_rows,
    const FanoutFn& avg_fanout, const KeyFanoutFn& key_fanout) {
  return GreedyPlan(view, updated_base, [&](const Candidate& c) {
    if (c.source_base != updated_base || delta_rows.empty()) {
      return avg_fanout(c.target_base, c.target_col);
    }
    // The probe keys are known: they are this delta's source-column values.
    double total = 0.0;
    for (const Row& row : delta_rows) {
      total += key_fanout(c.target_base, c.target_col, row[c.source_col]);
    }
    return total / static_cast<double>(delta_rows.size());
  });
}

std::vector<MaintenancePlan> EnumerateAllPlans(const BoundView& view,
                                               int updated_base) {
  std::vector<MaintenancePlan> out;
  if (updated_base < 0 || updated_base >= view.num_bases()) return out;
  std::vector<bool> filled(view.num_bases(), false);
  filled[updated_base] = true;
  MaintenancePlan partial;
  partial.updated_base = updated_base;
  Enumerate(view, filled, partial, out);
  return out;
}

double EstimatePlanCost(const BoundView& view, const MaintenancePlan& plan,
                        const FanoutFn& fanout) {
  (void)view;
  double partials = 1.0;
  double cost = 0.0;
  for (const PlanStep& step : plan.steps) {
    // Each partial is routed (1 send) and probed (1 search); results carry
    // the per-key fanout forward.
    cost += partials * 2.0;
    partials *= std::max(fanout(step.target_base, step.target_col), 1e-9);
    cost += partials;  // Materializing/forwarding the step's results.
  }
  return cost;
}

}  // namespace pjvm
