# Empty dependencies file for bench_fig7_tw_vs_nodes.
# This may be replaced when dependencies are built.
