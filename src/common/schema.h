#ifndef PJVM_COMMON_SCHEMA_H_
#define PJVM_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/value.h"

namespace pjvm {

/// \brief A named, typed column.
struct Column {
  std::string name;
  ValueType type;

  friend bool operator==(const Column& a, const Column& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// \brief An ordered list of columns describing a relation's tuples.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<int> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// OK iff the row has the right arity and per-column types.
  Status ValidateRow(const Row& row) const;

  /// Schema of the concatenation of two relations' tuples, prefixing column
  /// names with `a_prefix`/`b_prefix` + "." (used for join outputs).
  static Schema Concat(const Schema& a, const std::string& a_prefix,
                       const Schema& b, const std::string& b_prefix);

  /// Schema restricted to `indices`, in that order.
  Schema Project(const std::vector<int>& indices) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace pjvm

#endif  // PJVM_COMMON_SCHEMA_H_
