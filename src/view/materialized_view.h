#ifndef PJVM_VIEW_MATERIALIZED_VIEW_H_
#define PJVM_VIEW_MATERIALIZED_VIEW_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/system.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief The stored form of a join view: a distributed table (one fragment
/// per node) holding the view's output rows, partitioned per the view
/// definition (hash on the partitioning attribute, or round-robin when the
/// view "is not partitioned on an attribute" in the paper's terms).
class MaterializedView {
 public:
  /// Creates the view's backing table across the system. The table carries a
  /// non-clustered index on the partitioning attribute (the paper's model
  /// assumption 3) — unless `merged_layout` is set, in which case the view's
  /// merged co-clustered tree (view/merged_storage.h) is the key-ordered
  /// access path and the per-fragment index is skipped (content deletes stay
  /// O(1) through the row-lookup structure every fragment carries). The
  /// table starts empty; see ViewManager for backfill.
  static Result<MaterializedView> Create(ParallelSystem* sys, BoundView bound,
                                         bool merged_layout = false);

  const BoundView& bound() const { return bound_; }
  const std::string& table_name() const { return bound_.def().name; }

  /// Destination node of one output row.
  int DestinationOf(const Row& output_row);

  /// Applies one batch of output rows produced at `source_node`: routes each
  /// row through the interconnect to its home view node (one message per
  /// distinct destination, as in the paper's flows) and inserts or deletes
  /// there. `rows` are *output* rows (already projected). Deletions on a
  /// round-robin view search the nodes in order, charging one SEARCH per
  /// miss, since the row's location is not derivable from its content.
  Status ApplyOutputs(uint64_t txn, int source_node, std::vector<Row> rows,
                      bool is_delete, size_t* applied);

  /// All output rows of the view (test/inspection utility; uncharged).
  /// With `mvcc_reads` on, the scan runs inside one snapshot scope, so the
  /// result is the view's state at a single commit epoch across all nodes —
  /// never a torn mid-maintenance mixture. (Previously this was a bare
  /// ScanAll outside any transaction or snapshot: each node's fragment was
  /// read under its own latch at a different instant.)
  std::vector<Row> Contents() const;
  size_t RowCount() const { return sys_->RowCount(table_name()); }

  /// Mirror callback for the merged layout: invoked once per applied view
  /// row — (txn, destination node, output row, is_delete) — right where the
  /// heap changes, so the merged tree tracks the heap within the same
  /// transaction. Unset for the separate layout.
  using MergedHook = std::function<Status(uint64_t, int, const Row&, bool)>;
  void set_merged_hook(MergedHook hook) { merged_hook_ = std::move(hook); }

  /// Escrow routing callback for aggregate views (view/escrow.h): invoked
  /// per contribution row — (txn, destination node, contribution,
  /// is_delete) — before the eager fold. Returning true means the escrow
  /// journal applied the increment under a V lock and the eager
  /// probe/delete/insert must be skipped; false falls through to the eager
  /// path (which escrow has already X-locked when the contribution is a
  /// group birth/death edge). Unset when escrow is off.
  using EscrowHook = std::function<Result<bool>(uint64_t, int, const Row&, bool)>;
  void set_escrow_hook(EscrowHook hook) { escrow_hook_ = std::move(hook); }

 private:
  MaterializedView(ParallelSystem* sys, BoundView bound)
      : sys_(sys), bound_(std::move(bound)) {}

  /// Aggregate-view path of ApplyOutputs: folds contribution rows into the
  /// stored group rows ([group..., __count, aggregates...]), creating,
  /// updating, or removing groups as their counts move through zero.
  Status ApplyAggregateContributions(uint64_t txn, int source_node,
                                     std::vector<Row> rows, bool is_delete,
                                     size_t* applied);

  ParallelSystem* sys_;
  BoundView bound_;
  MergedHook merged_hook_;
  EscrowHook escrow_hook_;
};

/// \brief Recomputes the view's output rows from the current base tables by
/// a from-scratch multi-way hash join (bag semantics).
///
/// This is the correctness oracle for every incremental maintenance method,
/// and the backfill source when a view is first registered. It reads
/// fragments directly and charges no costs.
Result<std::vector<Row>> EvaluateViewFromScratch(ParallelSystem* sys,
                                                 const BoundView& bound);

}  // namespace pjvm

#endif  // PJVM_VIEW_MATERIALIZED_VIEW_H_
