#ifndef PJVM_STORAGE_MVCC_H_
#define PJVM_STORAGE_MVCC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/row.h"
#include "common/value.h"

namespace pjvm {

/// \brief Epoch-based multi-version state of one table fragment.
///
/// The representation is an immutable *versioned fragment snapshot*: a
/// folded base image plus a chain of per-commit deltas, newest first. The
/// whole structure is published through one atomic shared_ptr on the
/// fragment, so a reader captures a self-consistent state with a single
/// acquire load and then walks purely immutable data — reads are wait-free
/// and never touch a latch or the lock manager.
///
/// Visibility is by epoch: a commit publishes one MvccDelta stamped with the
/// epoch the SnapshotManager assigned it, and a reader at epoch E applies
/// exactly the deltas with `epoch <= E` on top of the base. Deltas above E
/// (in-flight commits published after the reader pinned its epoch) are
/// simply skipped. The base's epoch is kept at or below the minimum active
/// read epoch by the fold watermark (see TableFragment::MvccMaybeFold), so
/// the base is visible to every live reader by construction.
///
/// Version identity is the row's *content*, exactly like the engine's own
/// DeleteExact: a delete op removes one content-equal row from the visible
/// image. Heap lrids deliberately do not appear here — the heap recycles
/// them through a free list, so an lrid observed at op-execution time can
/// alias a different row by the time the op publishes (another transaction
/// reused the slot, or an abort's undo re-inserted a row elsewhere), which
/// would corrupt lrid-keyed composition.

/// \brief One logical heap mutation inside a published delta.
///
/// Ops carry the full row for both signs: a delete's row is the victim's
/// content (the match key), an insert's row is the new tuple.
/// `pages_after`/`rows_after` snapshot the fragment's shape right after the
/// op executed (captured under the node latch at record time — reading the
/// live heap at publish time would race with concurrent writers); the
/// newest visible delta's values stand in for `num_pages()`/`num_rows()` on
/// the snapshot read path, keeping full-scan charges bit-identical to the
/// live path in single-threaded runs.
struct MvccOp {
  enum class Kind : uint8_t { kInsert = 0, kDelete };
  Kind kind = Kind::kInsert;
  Row row;
  size_t pages_after = 0;
  size_t rows_after = 0;
};

/// \brief Access-path metadata carried by the base image, mirroring the
/// fragment's LocalIndex set at fold time (column + clustered flag — enough
/// to pick the same access path and charge the same costs as the live
/// read).
struct MvccIndexMeta {
  int column = -1;
  bool clustered = false;
};

/// \brief Folded image of the fragment at `epoch`: all live rows (in the
/// heap's ForEach order at fold time) plus per-index postings for
/// probe/range reads without touching the B+-trees.
struct MvccBase {
  uint64_t epoch = 0;
  int rows_per_page = 64;
  size_t num_pages = 0;
  std::vector<Row> rows;
  std::vector<MvccIndexMeta> index_meta;
  /// postings[i] belongs to index_meta[i]: key -> indices into `rows`, in
  /// arrival order.
  std::vector<std::map<Value, std::vector<size_t>>> postings;
};

/// \brief One committed transaction's ops against this fragment, in
/// execution order. `prev` links to the next-older delta (or null when the
/// delta sits directly on the base). `chain_ops` counts ops in this delta
/// and every older one above the base — the fold trigger.
struct MvccDelta {
  uint64_t epoch = 0;
  std::vector<MvccOp> ops;
  size_t num_pages = 0;
  size_t num_rows = 0;
  size_t chain_ops = 0;
  std::shared_ptr<const MvccDelta> prev;
};

/// \brief The unit a fragment publishes atomically: base + newest delta.
struct MvccState {
  std::shared_ptr<const MvccBase> base;
  std::shared_ptr<const MvccDelta> head;  // null = no unfolded deltas
};

/// \brief Probe output on the snapshot path (mirrors ProbeResult's rows
/// without depending on table_fragment.h).
struct MvccProbeOut {
  std::vector<Row> rows;
};

/// Index metadata for `column` in this state's base image, or nullptr.
const MvccIndexMeta* MvccFindIndex(const MvccState& state, int column);

/// Fragment page count as of the newest delta visible at `epoch` (base
/// value when no delta is visible). Exact single-threaded; a cost-charging
/// approximation under concurrent commits.
size_t MvccNumPages(const MvccState& state, uint64_t epoch);
/// Live-row count visible at `epoch`, composed exactly at any epoch.
size_t MvccNumRows(const MvccState& state, uint64_t epoch);

/// Rows with `column` == `key` visible at `epoch`. Uses the base postings
/// when the column is indexed in the image; otherwise composes and filters
/// (the ScanEq equivalent). The row multiset matches the live fragment's
/// Probe/ScanEq exactly for the same visible commits.
MvccProbeOut MvccProbe(const MvccState& state, uint64_t epoch, int column,
                       const Value& key);

/// Match count only (planning estimates; no row copies).
size_t MvccProbeCount(const MvccState& state, uint64_t epoch, int column,
                      const Value& key);

/// Appends rows with lo <= row[column] <= hi visible at `epoch` to `out`,
/// in ascending key order; returns the number delivered.
size_t MvccScanRange(const MvccState& state, uint64_t epoch, int column,
                     const Value& lo, const Value& hi, std::vector<Row>* out);

/// All rows visible at `epoch`, in composition order (base image order,
/// then chain inserts in commit order).
std::vector<Row> MvccAllRows(const MvccState& state, uint64_t epoch);

/// Number of deltas in the state's chain (metrics / tests).
size_t MvccChainLength(const MvccState& state);

/// Folds every delta of `state` into a fresh base image stamped with the
/// head delta's epoch. Precondition: the caller verified the whole chain is
/// at or below the GC watermark (no live reader can need the old base).
std::shared_ptr<const MvccBase> MvccFoldAll(const MvccState& state);

}  // namespace pjvm

#endif  // PJVM_STORAGE_MVCC_H_
