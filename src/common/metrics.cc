#include "common/metrics.h"

#include <algorithm>
#include <sstream>

namespace pjvm {

double CostTracker::TotalWorkload() const {
  double total = 0.0;
  for (const NodeCounters& n : nodes_) total += n.IO(weights_);
  return total;
}

double CostTracker::ResponseTime() const {
  double rt = 0.0;
  for (const NodeCounters& n : nodes_) rt = std::max(rt, n.IO(weights_));
  return rt;
}

double CostTracker::ComputeResponseTime() const {
  double rt = 0.0;
  for (const NodeCounters& n : nodes_) rt = std::max(rt, n.ComputeIO(weights_));
  return rt;
}

uint64_t CostTracker::TotalSends() const {
  uint64_t total = 0;
  for (const NodeCounters& n : nodes_) total += n.sends;
  return total;
}

int CostTracker::NodesTouched() const {
  int count = 0;
  for (const NodeCounters& n : nodes_) {
    if (n.searches + n.fetches + n.inserts + n.sends > 0) ++count;
  }
  return count;
}

void CostTracker::Reset() {
  for (NodeCounters& n : nodes_) n = NodeCounters{};
}

std::string CostTracker::ToString() const {
  std::ostringstream os;
  os << "CostTracker{TW=" << TotalWorkload() << " RT=" << ResponseTime()
     << " sends=" << TotalSends() << " nodes=[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) os << " ";
    os << nodes_[i].IO(weights_);
  }
  os << "]}";
  return os.str();
}

}  // namespace pjvm
