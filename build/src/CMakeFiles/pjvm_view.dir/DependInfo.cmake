
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/ar_minimizer.cc" "src/CMakeFiles/pjvm_view.dir/view/ar_minimizer.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/ar_minimizer.cc.o.d"
  "/root/repo/src/view/aux_relation_maintainer.cc" "src/CMakeFiles/pjvm_view.dir/view/aux_relation_maintainer.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/aux_relation_maintainer.cc.o.d"
  "/root/repo/src/view/global_index_maintainer.cc" "src/CMakeFiles/pjvm_view.dir/view/global_index_maintainer.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/global_index_maintainer.cc.o.d"
  "/root/repo/src/view/hybrid_advisor.cc" "src/CMakeFiles/pjvm_view.dir/view/hybrid_advisor.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/hybrid_advisor.cc.o.d"
  "/root/repo/src/view/maintainer.cc" "src/CMakeFiles/pjvm_view.dir/view/maintainer.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/maintainer.cc.o.d"
  "/root/repo/src/view/materialized_view.cc" "src/CMakeFiles/pjvm_view.dir/view/materialized_view.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/materialized_view.cc.o.d"
  "/root/repo/src/view/naive_maintainer.cc" "src/CMakeFiles/pjvm_view.dir/view/naive_maintainer.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/naive_maintainer.cc.o.d"
  "/root/repo/src/view/planner.cc" "src/CMakeFiles/pjvm_view.dir/view/planner.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/planner.cc.o.d"
  "/root/repo/src/view/view_def.cc" "src/CMakeFiles/pjvm_view.dir/view/view_def.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/view_def.cc.o.d"
  "/root/repo/src/view/view_manager.cc" "src/CMakeFiles/pjvm_view.dir/view/view_manager.cc.o" "gcc" "src/CMakeFiles/pjvm_view.dir/view/view_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
