#ifndef PJVM_OBS_METRICS_REGISTRY_H_
#define PJVM_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pjvm {

/// \brief One label dimension of a metric series ("tenant" -> "t3").
struct MetricLabel {
  std::string key;
  std::string value;
};

/// Escapes a label value for Prometheus text exposition: backslash, double
/// quote, and newline become \\, \", and \n.
std::string EscapeLabelValue(const std::string& v);

/// Renders `base{k1="v1",k2="v2"}` with escaped values — the canonical series
/// name for a labeled family member. Call sites that build label sets by hand
/// must escape values themselves (or, better, go through this).
std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels);

/// \brief Merged, non-atomic view of a latency histogram: what callers
/// aggregate across nodes/runs and compute quantiles from.
///
/// Buckets are log2-spaced: bucket 0 holds the value 0, bucket i (i >= 1)
/// holds values in [2^(i-1), 2^i - 1]. Any two HistogramData share the same
/// layout, so Merge is element-wise addition — per-node or per-run
/// histograms combine exactly (count/sum are lossless; quantiles are
/// bucket-resolution approximations clamped to the merged [min, max]).
struct HistogramData {
  static constexpr int kNumBuckets = 65;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< Valid only when count > 0.
  uint64_t max = 0;  ///< Valid only when count > 0.

  /// Bucket index a value lands in.
  static int BucketIndex(uint64_t v);
  /// Inclusive value range [BucketLo(i), BucketHi(i)] of bucket i.
  static uint64_t BucketLo(int i);
  static uint64_t BucketHi(int i);

  void Add(uint64_t v);
  void Merge(const HistogramData& other);

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
  /// Quantile q in [0, 1]: linear interpolation inside the containing
  /// bucket, clamped to the observed [min, max]. 0 when empty; exact when
  /// all recorded values were equal.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

/// \brief Thread-safe log-bucketed latency histogram (lock-free: relaxed
/// atomic bucket counts; min/max via CAS).
class LatencyHistogram {
 public:
  void Record(uint64_t v);
  HistogramData Snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, HistogramData::kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief Time-windowed rotating latency histogram: a ring of per-window
/// LatencyHistograms plus an all-time cumulative one.
///
/// Record(v, now_ns) lands `v` in the window containing `now_ns` (windows
/// are aligned to a fixed `window_ns` grid from time 0). The ring retains
/// the most recent `num_windows` windows; older ones are overwritten as time
/// advances, so quantiles are reportable *per window* — warmup and steady
/// state stay distinguishable instead of blurring into one cumulative
/// histogram. The cumulative histogram never rotates.
///
/// Thread-safety: Record is lock-free (per-window LatencyHistograms plus an
/// atomic epoch per slot). A Record racing a slot rotation may land in the
/// freshly-reset window — at most a few boundary samples shift one window,
/// which is below bucket resolution for any steady workload.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(uint64_t window_ns = 1'000'000'000,
                             int num_windows = 16);

  /// Records `v` into the window containing `now_ns` (monotonic clock of the
  /// caller's choosing; all Records to one histogram must share a timebase).
  void Record(uint64_t v, uint64_t now_ns);

  /// One retained window: its grid index, start time, and merged data.
  struct Window {
    uint64_t index = 0;     ///< now_ns / window_ns at recording time.
    uint64_t start_ns = 0;  ///< index * window_ns.
    HistogramData data;
  };

  /// The retained windows, oldest first. Empty slots (never recorded into,
  /// or overwritten by a later epoch) are omitted.
  std::vector<Window> Windows() const;

  /// All-time merge across every window ever recorded (not just retained).
  HistogramData Cumulative() const;

  uint64_t window_ns() const { return window_ns_; }
  int num_windows() const { return static_cast<int>(slots_.size()); }

  void Reset();

 private:
  struct Slot {
    /// Grid index currently stored here; kEmpty when never used.
    std::atomic<uint64_t> epoch{kEmpty};
    LatencyHistogram hist;
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  uint64_t window_ns_;
  std::vector<std::unique_ptr<Slot>> slots_;
  LatencyHistogram cumulative_;
};

/// \brief Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Named metrics with Prometheus text exposition and a JSON dump.
///
/// Metric handles are stable for the registry's lifetime; lookup takes a
/// mutex (cold path — call sites cache the returned pointer), updates on the
/// handle are lock-free. Names may carry Prometheus labels inline:
/// `pjvm_maintain_ns{method="NAIVE"}` — exposition splices histogram `le`
/// labels into the given label set.
class MetricsRegistry {
 public:
  /// The process-wide registry the engine records into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);
  /// Windowed histogram: `window_ns`/`num_windows` apply only on first
  /// registration of `name`; later lookups return the existing instance.
  WindowedHistogram* windowed(const std::string& name,
                              uint64_t window_ns = 1'000'000'000,
                              int num_windows = 16);

  /// Labeled-family conveniences: handle for `base` + `labels` (escaped).
  Counter* counter(const std::string& base,
                   const std::vector<MetricLabel>& labels) {
    return counter(LabeledName(base, labels));
  }
  LatencyHistogram* histogram(const std::string& base,
                              const std::vector<MetricLabel>& labels) {
    return histogram(LabeledName(base, labels));
  }
  WindowedHistogram* windowed(const std::string& base,
                              const std::vector<MetricLabel>& labels,
                              uint64_t window_ns = 1'000'000'000,
                              int num_windows = 16) {
    return windowed(LabeledName(base, labels), window_ns, num_windows);
  }

  /// Help text emitted as the family's `# HELP` line. Unset families get a
  /// placeholder so every family still exposes a HELP line.
  void SetHelp(const std::string& base, const std::string& help);

  /// Prometheus text exposition format. Series are grouped by family (base
  /// name) with exactly one `# HELP`/`# TYPE` pair per family, histogram
  /// buckets carry cumulative counts with a `+Inf` bound, and label values
  /// written through LabeledName are escaped — output parses under a real
  /// scraper. Windowed histograms expose their cumulative merge.
  std::string PrometheusText() const;
  /// One JSON object: counters/gauges verbatim, histograms as
  /// {count, sum, mean, min, max, p50, p95, p99}, windowed histograms as
  /// {window_ns, cumulative, windows: [{index, start_ns, count, p50, ...}]}.
  std::string ToJson() const;

  /// Zeroes every metric (registrations and handles survive).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windowed_;
  std::map<std::string, std::string> help_;
};

/// \brief Ambient attribution for the work the current thread is doing:
/// which tenant, against which view, in which operation class.
///
/// Multi-tenant drivers (workload/openloop.h) set a scope around each
/// dispatched operation; the engine and view layers read it when they emit
/// spans and metrics, so per-tenant series exist without threading tenant
/// arguments through every engine call. Empty fields mean "untagged".
struct WorkloadTag {
  std::string tenant;
  std::string view;
  std::string op_class;
};

/// \brief RAII thread-local WorkloadTag scope (nestable; inner wins).
class WorkloadTagScope {
 public:
  explicit WorkloadTagScope(WorkloadTag tag);
  ~WorkloadTagScope();

  WorkloadTagScope(const WorkloadTagScope&) = delete;
  WorkloadTagScope& operator=(const WorkloadTagScope&) = delete;

  /// The innermost tag on this thread, or nullptr when untagged.
  static const WorkloadTag* Current();

 private:
  WorkloadTag tag_;
  const WorkloadTag* prev_;
};

}  // namespace pjvm

#endif  // PJVM_OBS_METRICS_REGISTRY_H_
