#include "common/value.h"

#include <cstdio>
#include <cstdlib>

namespace pjvm {

namespace {

// SplitMix64 finalizer: a strong, deterministic 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void TypeMismatch(const char* want, ValueType got) {
  std::fprintf(stderr, "PJVM fatal: Value type mismatch: wanted %s, got %s\n",
               want, ValueTypeToString(got));
  std::abort();
}

}  // namespace

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt64() const {
  if (!is_int64()) TypeMismatch("INT64", type());
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  if (!is_double()) TypeMismatch("DOUBLE", type());
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  if (!is_string()) TypeMismatch("STRING", type());
  return std::get<std::string>(repr_);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(std::get<int64_t>(repr_)));
    case ValueType::kDouble: {
      double d = std::get<double>(repr_);
      if (d == 0.0) d = 0.0;  // Normalize -0.0 to +0.0 so they hash equally.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x5bd1e9955bd1e995ULL);
    }
    case ValueType::kString: {
      // FNV-1a over the bytes, then mixed.
      const std::string& s = std::get<std::string>(repr_);
      uint64_t h = 0xcbf29ce484222325ULL;
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      return Mix64(h);
    }
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return std::get<std::string>(repr_).size() + 1;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(repr_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(repr_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(repr_);
  }
  return "";
}

bool operator<(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    std::fprintf(stderr, "PJVM fatal: comparing Values of types %s and %s\n",
                 ValueTypeToString(a.type()), ValueTypeToString(b.type()));
    std::abort();
  }
  return a.repr_ < b.repr_;
}

}  // namespace pjvm
