
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_tw_vs_nodes.cc" "bench/CMakeFiles/bench_fig7_tw_vs_nodes.dir/bench_fig7_tw_vs_nodes.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_tw_vs_nodes.dir/bench_fig7_tw_vs_nodes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_view.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
