// Open-loop multi-tenant SLO bench: N tenants, each owning a join view over
// the shared A/B tables, offer Poisson arrivals (point reads + range scans +
// Zipf-skewed update streams) at a fixed per-tenant rate, and the harness
// measures every operation's latency from its SCHEDULED arrival time — so at
// overload the backlog shows up in the tail instead of silently throttling
// the driver (no coordinated omission). Queue wait (dispatch - scheduled)
// and service time (completion - dispatch) are reported separately, and
// per-window p50/p95/p99 distinguish warmup from steady state.
//
// The sweep crosses offered load x tenant count x maintenance method
// (naive / auxiliary relations / global indexes) x mvcc_reads {off, on}.
// Every update maintains EVERY tenant's view inside one distributed
// transaction, so tenant count multiplies the per-update maintenance work —
// the multi-tenant amplification the SLO report is meant to expose. The
// saturating server is each tenant's single update-writer (a tenant's
// update stream must apply in order), so as the offered rate approaches the
// writer's service capacity the update class shows the hockey stick first.
//
// Per cell the report carries offered vs achieved throughput, goodput
// against the per-tenant SLO threshold, per-op-class latency / queue-wait /
// service histograms, and per-window quantiles; a "series" section gathers
// each (method, mvcc, tenants) sweep into offered-vs-p99 curves. Each cell
// ends with the from-scratch consistency oracle and an empty-lock-table
// check. Written to BENCH_slo_openloop.json.
//
// In-bench asserts: at each series' lowest (unloaded) rate, achieved
// throughput must be >= 0.9x offered; in the full sweep at least one series
// must show a hockey stick (update p99 at the top rate >= 2x the bottom
// rate's). CI runs the "ci" sweep — one unloaded AR cell — and additionally
// exports a Chrome trace plus the Prometheus text dump as artifacts.
//
// Usage: bench_slo_openloop [duration_ms] [nodes] [sweep]
//   sweep = "full" (default): methods {NAIVE, AUX, GI} x mvcc {off, on} x
//           tenants {2, 4} x per-tenant rates {250, 1000, 4000}/s
//   sweep = "ci": one cell (AUX, mvcc on, 2 tenants, 100/s) with trace +
//           metrics exports

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/trace.h"
#include "workload/openloop.h"

namespace pjvm::bench {
namespace {

// The simulated WAL device: 1ms per force, amortized across concurrent
// commits by group commit. This is what makes an update's service time
// milliseconds-scale, so the sweep's top rates actually saturate the
// per-tenant writer instead of the bench being a pure CPU microbenchmark.
constexpr uint64_t kForceNs = 1'000'000;
constexpr int kWindowUs = 50;
constexpr int64_t kBJoinKeys = 64;
constexpr int kWarmupRows = 32;
// Per-op SLO, from scheduled arrival: generous against unloaded service
// times (tens of microseconds to a few ms) and blown through at overload.
constexpr uint64_t kSloNs = 20'000'000;

struct SloBenchConfig {
  uint64_t duration_ms = 800;
  int nodes = 4;
  bool ci_only = false;
};

struct SloCell {
  MaintenanceMethod method = MaintenanceMethod::kAuxRelation;
  bool mvcc = true;
  int tenants = 2;
  double rate_per_tenant = 250.0;
};

OpenLoopResult RunCell(const SloBenchConfig& bc, const SloCell& cell) {
  SystemConfig cfg;
  cfg.num_nodes = bc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  cfg.maintain_max_attempts = 16;
  cfg.maintain_retry_base_us = 100;
  cfg.lock_shards = 16;
  cfg.rw_latches = true;
  cfg.wal_force_ns = kForceNs;
  cfg.group_commit = true;
  cfg.group_commit_window_us = kWindowUs;
  cfg.mvcc_reads = cell.mvcc;
  ParallelSystem sys(cfg);

  TwoTableConfig tt;
  tt.b_join_keys = kBJoinKeys;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);

  OpenLoopConfig olc;
  olc.duration_ms = bc.duration_ms;
  olc.window_ms = std::max<uint64_t>(1, bc.duration_ms / 4);
  olc.read_workers = 4;
  olc.b_join_keys = kBJoinKeys;
  olc.warmup_rows_per_tenant = kWarmupRows;
  for (int t = 0; t < cell.tenants; ++t) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(t);
    spec.rate_per_sec = cell.rate_per_tenant;
    spec.process = ArrivalProcess::kPoisson;
    spec.zipf_theta = 0.9;
    spec.seed = 100 + t;
    spec.slo_ns = kSloNs;
    olc.tenants.push_back(spec);
  }
  RegisterTenantViews(&manager, &olc.tenants, cell.method).Check();

  OpenLoopDriver driver(&manager, std::move(olc));
  auto result = driver.Run();
  result.status().Check();

  // However the open-loop interleaving went, every tenant's view must equal
  // its from-scratch join and the lock table must have quiesced.
  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after open-loop cell").Check();
  }
  return std::move(result).value();
}

std::string WindowsJson(const std::vector<WindowQuantiles>& windows) {
  JsonWriter w;
  w.BeginArray();
  for (const WindowQuantiles& win : windows) {
    w.BeginObject()
        .Key("index").Uint(win.index)
        .Key("start_ms").Num(win.start_ms)
        .Key("count").Uint(win.count)
        .Key("p50").Num(win.p50)
        .Key("p95").Num(win.p95)
        .Key("p99").Num(win.p99)
        .Key("mean").Num(win.mean)
        .Key("max").Num(win.max)
        .EndObject();
  }
  w.EndArray();
  return w.str();
}

std::string OpStatsJson(const OpClassStats& s) {
  JsonWriter w;
  w.BeginObject()
      .Key("offered").Uint(s.offered)
      .Key("completed").Uint(s.completed)
      .Key("failed").Uint(s.failed)
      .Key("resubmits").Uint(s.resubmits)
      .Key("slo_violations").Uint(s.slo_violations)
      .Key("latency_ns").Raw(LatencyJson(s.latency))
      .Key("queue_wait_ns").Raw(LatencyJson(s.queue_wait))
      .Key("service_ns").Raw(LatencyJson(s.service))
      .Key("windows").Raw(WindowsJson(s.windows))
      .EndObject();
  return w.str();
}

std::string TenantJson(const TenantResult& tr) {
  JsonWriter w;
  w.BeginObject()
      .Key("tenant").Str(tr.tenant)
      .Key("offered_per_sec").Num(tr.offered_per_sec)
      .Key("achieved_per_sec").Num(tr.achieved_per_sec)
      .Key("goodput_per_sec").Num(tr.goodput_per_sec)
      .Key("offered").Uint(tr.offered)
      .Key("completed").Uint(tr.completed)
      .Key("slo_violations").Uint(tr.slo_violations)
      .Key("windows").Raw(WindowsJson(tr.windows))
      .Key("ops").BeginObject();
  for (int o = 0; o < kNumOpClasses; ++o) {
    w.Key(OpClassToString(static_cast<OpClass>(o)))
        .Raw(OpStatsJson(tr.ops[o]));
  }
  w.EndObject().EndObject();
  return w.str();
}

/// Series-level scalars of one cell, for the offered-vs-tail curves.
struct CellSummary {
  SloCell cell;
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  double goodput_per_sec = 0.0;
  double update_p99_ns = 0.0;
  double overall_p99_ns = 0.0;
  double update_queue_p99_ns = 0.0;
  uint64_t slo_violations = 0;
};

CellSummary Summarize(const SloCell& cell, const OpenLoopResult& r) {
  CellSummary s;
  s.cell = cell;
  HistogramData all, update, update_queue;
  for (const TenantResult& tr : r.tenants) {
    s.offered_per_sec += tr.offered_per_sec;
    s.achieved_per_sec += tr.achieved_per_sec;
    s.goodput_per_sec += tr.goodput_per_sec;
    s.slo_violations += tr.slo_violations;
    for (int o = 0; o < kNumOpClasses; ++o) {
      all.Merge(tr.ops[o].latency);
    }
    update.Merge(tr.ops[static_cast<int>(OpClass::kUpdate)].latency);
    update_queue.Merge(tr.ops[static_cast<int>(OpClass::kUpdate)].queue_wait);
  }
  s.update_p99_ns = update.P99();
  s.overall_p99_ns = all.P99();
  s.update_queue_p99_ns = update_queue.P99();
  return s;
}

std::string CellJson(const CellSummary& s, const OpenLoopResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("method").Str(MaintenanceMethodToString(s.cell.method))
      .Key("mvcc").Str(s.cell.mvcc ? "on" : "off")
      .Key("tenants").Int(s.cell.tenants)
      .Key("rate_per_tenant").Num(s.cell.rate_per_tenant)
      .Key("horizon_ms").Num(r.horizon_ms)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("total_offered").Uint(r.total_offered)
      .Key("total_completed").Uint(r.total_completed)
      .Key("offered_per_sec").Num(s.offered_per_sec)
      .Key("achieved_per_sec").Num(s.achieved_per_sec)
      .Key("goodput_per_sec").Num(s.goodput_per_sec)
      .Key("slo_violations").Uint(s.slo_violations)
      .Key("overall_p99_ns").Num(s.overall_p99_ns)
      .Key("update_p99_ns").Num(s.update_p99_ns)
      .Key("update_queue_p99_ns").Num(s.update_queue_p99_ns)
      .Key("tenant_results").BeginArray();
  for (const TenantResult& tr : r.tenants) w.Raw(TenantJson(tr));
  w.EndArray().EndObject();
  return w.str();
}

void Run(const SloBenchConfig& bc) {
  const std::vector<double> rates =
      bc.ci_only ? std::vector<double>{100.0}
                 : std::vector<double>{250.0, 1000.0, 4000.0};
  const std::vector<int> tenant_counts =
      bc.ci_only ? std::vector<int>{2} : std::vector<int>{2, 4};
  const std::vector<MaintenanceMethod> methods =
      bc.ci_only ? std::vector<MaintenanceMethod>{
                       MaintenanceMethod::kAuxRelation}
                 : std::vector<MaintenanceMethod>{
                       MaintenanceMethod::kNaive,
                       MaintenanceMethod::kAuxRelation,
                       MaintenanceMethod::kGlobalIndex};
  const std::vector<bool> mvcc_modes =
      bc.ci_only ? std::vector<bool>{true} : std::vector<bool>{false, true};

  PrintHeader("open-loop SLO sweep: " + std::to_string(bc.duration_ms) +
              "ms horizon, " + std::to_string(bc.nodes) + " nodes" +
              (bc.ci_only ? " (ci)" : ""));
  if (bc.ci_only) {
    // The CI artifact pass wants a trace of the smoke cell.
    Tracer::Global().Enable();
  }

  BenchReport report("slo_openloop");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("duration_ms").Uint(bc.duration_ms)
        .Key("nodes").Int(bc.nodes)
        .Key("b_join_keys").Int(kBJoinKeys)
        .Key("warmup_rows_per_tenant").Int(kWarmupRows)
        .Key("wal_force_ns").Uint(kForceNs)
        .Key("slo_ns").Uint(kSloNs)
        .Key("sweep").Str(bc.ci_only ? "ci" : "full")
        .EndObject();
    report.Add("config", w.str());
  }

  std::vector<CellSummary> summaries;
  JsonWriter cells;
  cells.BeginArray();
  for (MaintenanceMethod method : methods) {
    for (bool mvcc : mvcc_modes) {
      for (int tenants : tenant_counts) {
        for (double rate : rates) {
          SloCell cell{method, mvcc, tenants, rate};
          OpenLoopResult r = RunCell(bc, cell);
          CellSummary s = Summarize(cell, r);
          std::cout << MaintenanceMethodToString(method)
                    << " mvcc=" << (mvcc ? "on" : "off")
                    << " tenants=" << tenants << " rate=" << rate
                    << ": offered=" << s.offered_per_sec
                    << "/s achieved=" << s.achieved_per_sec
                    << "/s goodput=" << s.goodput_per_sec
                    << "/s p99=" << s.overall_p99_ns / 1e6
                    << "ms update_p99=" << s.update_p99_ns / 1e6
                    << "ms violations=" << s.slo_violations << "\n";
          cells.Raw(CellJson(s, r));
          summaries.push_back(s);
        }
      }
    }
  }
  cells.EndArray();
  report.Add("cells", cells.str());

  // Offered-vs-tail curves, one per (method, mvcc, tenants) series.
  JsonWriter series;
  series.BeginArray();
  for (MaintenanceMethod method : methods) {
    for (bool mvcc : mvcc_modes) {
      for (int tenants : tenant_counts) {
        series.BeginObject()
            .Key("method").Str(MaintenanceMethodToString(method))
            .Key("mvcc").Str(mvcc ? "on" : "off")
            .Key("tenants").Int(tenants)
            .Key("points").BeginArray();
        for (const CellSummary& s : summaries) {
          if (s.cell.method != method || s.cell.mvcc != mvcc ||
              s.cell.tenants != tenants) {
            continue;
          }
          series.BeginObject()
              .Key("rate_per_tenant").Num(s.cell.rate_per_tenant)
              .Key("offered_per_sec").Num(s.offered_per_sec)
              .Key("achieved_per_sec").Num(s.achieved_per_sec)
              .Key("goodput_per_sec").Num(s.goodput_per_sec)
              .Key("update_p99_ms").Num(s.update_p99_ns / 1e6)
              .Key("overall_p99_ms").Num(s.overall_p99_ns / 1e6)
              .EndObject();
        }
        series.EndArray().EndObject();
      }
    }
  }
  series.EndArray();
  report.Add("series", series.str());
  report.Write();

  if (bc.ci_only) {
    const std::string dir = BenchReport::OutputDir();
    Tracer::Global()
        .ExportChromeTrace(dir + "/slo_openloop_trace.json")
        .Check();
    std::ofstream prom(dir + "/slo_openloop_metrics.prom");
    prom << MetricsRegistry::Global().PrometheusText();
    std::cout << "wrote " << dir << "/slo_openloop_trace.json and "
              << dir << "/slo_openloop_metrics.prom\n";
  }

  // Unloaded-point sanity: at each series' lowest rate the system must keep
  // up — achieved throughput within 10% of offered.
  for (const CellSummary& s : summaries) {
    if (s.cell.rate_per_tenant != rates.front()) continue;
    if (s.achieved_per_sec < 0.9 * s.offered_per_sec) {
      Status::Internal(
          "unloaded cell fell behind: " +
          std::string(MaintenanceMethodToString(s.cell.method)) +
          " mvcc=" + (s.cell.mvcc ? "on" : "off") + " tenants=" +
          std::to_string(s.cell.tenants) + " achieved " +
          std::to_string(s.achieved_per_sec) + "/s of offered " +
          std::to_string(s.offered_per_sec) + "/s")
          .Check();
    }
  }
  if (!bc.ci_only) {
    // The sweep must reach saturation somewhere: at least one series' update
    // p99 at the top rate >= 2x its bottom-rate p99.
    bool hockey = false;
    for (MaintenanceMethod method : methods) {
      for (bool mvcc : mvcc_modes) {
        for (int tenants : tenant_counts) {
          double low = 0.0, high = 0.0;
          for (const CellSummary& s : summaries) {
            if (s.cell.method != method || s.cell.mvcc != mvcc ||
                s.cell.tenants != tenants) {
              continue;
            }
            if (s.cell.rate_per_tenant == rates.front()) low = s.update_p99_ns;
            if (s.cell.rate_per_tenant == rates.back()) high = s.update_p99_ns;
          }
          if (low > 0.0 && high >= 2.0 * low) hockey = true;
        }
      }
    }
    if (!hockey) {
      Status::Internal("no series shows tail growth near saturation — "
                       "raise the top sweep rate")
          .Check();
    }
  }
  std::cout << "slo_openloop asserts passed\n";
}

}  // namespace
}  // namespace pjvm::bench

int main(int argc, char** argv) {
  pjvm::bench::SloBenchConfig bc;
  if (argc > 1) bc.duration_ms = std::stoull(argv[1]);
  if (argc > 2) bc.nodes = std::stoi(argv[2]);
  if (argc > 3) bc.ci_only = std::string(argv[3]) == "ci";
  pjvm::bench::Run(bc);
  return 0;
}
