#include "storage/table_fragment.h"

#include <algorithm>
#include <set>

namespace pjvm {

TableFragment::TableFragment(Schema schema, int rows_per_page)
    : schema_(std::move(schema)), heap_(rows_per_page) {}

Status TableFragment::CreateIndex(int column, bool clustered) {
  if (column < 0 || column >= schema_.num_columns()) {
    return Status::InvalidArgument("index column out of range");
  }
  if (FindIndex(column) != nullptr) {
    return Status::AlreadyExists("index on column " + std::to_string(column) +
                                 " already exists");
  }
  if (clustered && has_clustered_) {
    return Status::InvalidArgument(
        "fragment already has a clustered index; a table can be clustered on "
        "at most one attribute");
  }
  auto index = std::make_unique<LocalIndex>(column, clustered);
  // Backfill from existing rows.
  heap_.ForEach([&](LocalRowId lrid, const Row& row) {
    index->tree.Insert(row[column], lrid);
    return true;
  });
  if (clustered) has_clustered_ = true;
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const LocalIndex* TableFragment::FindIndex(int column) const {
  for (const auto& idx : indexes_) {
    if (idx->column == column) return idx.get();
  }
  return nullptr;
}

std::vector<const LocalIndex*> TableFragment::Indexes() const {
  std::vector<const LocalIndex*> out;
  out.reserve(indexes_.size());
  for (const auto& idx : indexes_) out.push_back(idx.get());
  return out;
}

void TableFragment::EnableRowLookup() {
  if (row_lookup_enabled_) return;
  row_lookup_enabled_ = true;
  heap_.ForEach([&](LocalRowId lrid, const Row& row) {
    row_lookup_[HashRow(row)].push_back(lrid);
    return true;
  });
}

Result<LocalRowId> TableFragment::Insert(Row row) {
  PJVM_RETURN_NOT_OK(schema_.ValidateRow(row));
  uint64_t row_hash = row_lookup_enabled_ ? HashRow(row) : 0;
  LocalRowId lrid = heap_.Insert(std::move(row));
  const Row& stored = *heap_.Get(lrid);
  IndexInsert(lrid, stored);
  if (row_lookup_enabled_) row_lookup_[row_hash].push_back(lrid);
  return lrid;
}

Status TableFragment::DeleteByRid(LocalRowId lrid, bool keep_slot) {
  const Row* row = heap_.Get(lrid);
  if (row == nullptr) {
    return Status::NotFound("fragment: no row at lrid " + std::to_string(lrid));
  }
  PJVM_RETURN_NOT_OK(IndexRemove(lrid, *row));
  if (row_lookup_enabled_) {
    auto it = row_lookup_.find(HashRow(*row));
    if (it != row_lookup_.end()) {
      auto& rids = it->second;
      rids.erase(std::find(rids.begin(), rids.end(), lrid));
      if (rids.empty()) row_lookup_.erase(it);
    }
  }
  return keep_slot ? heap_.DeleteKeepSlot(lrid) : heap_.Delete(lrid);
}

Result<LocalRowId> TableFragment::FindExact(const Row& row) const {
  if (row_lookup_enabled_) {
    auto it = row_lookup_.find(HashRow(row));
    if (it != row_lookup_.end()) {
      for (LocalRowId lrid : it->second) {
        const Row* candidate = heap_.Get(lrid);
        if (candidate != nullptr && *candidate == row) return lrid;
      }
    }
    return Status::NotFound("fragment: row not found: " + RowToString(row));
  }
  LocalRowId found = 0;
  bool ok = false;
  heap_.ForEach([&](LocalRowId lrid, const Row& candidate) {
    if (candidate == row) {
      found = lrid;
      ok = true;
      return false;
    }
    return true;
  });
  if (!ok) {
    return Status::NotFound("fragment: row not found: " + RowToString(row));
  }
  return found;
}

Result<LocalRowId> TableFragment::DeleteExact(const Row& row, bool keep_slot) {
  PJVM_ASSIGN_OR_RETURN(LocalRowId lrid, FindExact(row));
  PJVM_RETURN_NOT_OK(DeleteByRid(lrid, keep_slot));
  return lrid;
}

Status TableFragment::InsertAt(LocalRowId lrid, Row row) {
  PJVM_RETURN_NOT_OK(schema_.ValidateRow(row));
  uint64_t row_hash = row_lookup_enabled_ ? HashRow(row) : 0;
  PJVM_RETURN_NOT_OK(heap_.InsertAt(lrid, std::move(row)));
  const Row& stored = *heap_.Get(lrid);
  IndexInsert(lrid, stored);
  if (row_lookup_enabled_) row_lookup_[row_hash].push_back(lrid);
  return Status::OK();
}

Result<ProbeResult> TableFragment::Probe(int column, const Value& key) const {
  const LocalIndex* index = FindIndex(column);
  if (index == nullptr) {
    return Status::InvalidArgument("no index on column " +
                                   std::to_string(column));
  }
  ProbeResult out;
  const auto* list = index->tree.Find(key);
  if (list != nullptr) {
    std::set<uint64_t> pages;
    out.rids = *list;
    out.rows.reserve(list->size());
    for (LocalRowId lrid : *list) {
      out.rows.push_back(*heap_.Get(lrid));
      pages.insert(heap_.PageOf(lrid));
    }
    out.pages_touched = pages.size();
  }
  return out;
}

ProbeResult TableFragment::ScanEq(int column, const Value& key) const {
  ProbeResult out;
  std::set<uint64_t> pages;
  heap_.ForEach([&](LocalRowId lrid, const Row& row) {
    if (row[column] == key) {
      out.rows.push_back(row);
      out.rids.push_back(lrid);
      pages.insert(heap_.PageOf(lrid));
    }
    return true;
  });
  out.pages_touched = pages.size();
  return out;
}

std::vector<Row> TableFragment::AllRows() const {
  std::vector<Row> rows;
  rows.reserve(heap_.num_rows());
  heap_.ForEach([&](LocalRowId, const Row& row) {
    rows.push_back(row);
    return true;
  });
  return rows;
}

std::shared_ptr<const MvccBase> TableFragment::BuildBaseFromLive(
    uint64_t epoch) const {
  auto base = std::make_shared<MvccBase>();
  base->epoch = epoch;
  base->rows_per_page = heap_.rows_per_page();
  base->num_pages = heap_.num_pages();
  base->rows.reserve(heap_.num_rows());
  heap_.ForEach([&](LocalRowId, const Row& row) {
    base->rows.push_back(row);
    return true;
  });
  base->index_meta.reserve(indexes_.size());
  for (const auto& idx : indexes_) {
    base->index_meta.push_back(MvccIndexMeta{idx->column, idx->clustered});
  }
  base->postings.resize(base->index_meta.size());
  for (size_t i = 0; i < base->index_meta.size(); ++i) {
    int col = base->index_meta[i].column;
    for (size_t slot = 0; slot < base->rows.size(); ++slot) {
      base->postings[i][base->rows[slot][col]].push_back(slot);
    }
  }
  return base;
}

void TableFragment::EnableMvcc(uint64_t epoch) {
  if (mvcc_enabled_) return;
  mvcc_enabled_ = true;
  auto state = std::make_shared<MvccState>();
  state->base = BuildBaseFromLive(epoch);
  mvcc_.store(std::move(state), std::memory_order_release);
}

void TableFragment::MvccPublish(uint64_t epoch, std::vector<MvccOp> ops) {
  if (!mvcc_enabled_ || ops.empty()) return;
  std::shared_ptr<const MvccState> old =
      mvcc_.load(std::memory_order_acquire);
  auto delta = std::make_shared<MvccDelta>();
  delta->epoch = epoch;
  delta->num_pages = ops.back().pages_after;
  delta->num_rows = ops.back().rows_after;
  delta->prev = old->head;
  delta->chain_ops =
      ops.size() + (old->head != nullptr ? old->head->chain_ops : 0);
  delta->ops = std::move(ops);
  auto state = std::make_shared<MvccState>();
  state->base = old->base;
  state->head = std::move(delta);
  mvcc_.store(std::move(state), std::memory_order_release);
}

size_t TableFragment::MvccMaybeFold(uint64_t watermark) {
  if (!mvcc_enabled_) return 0;
  std::shared_ptr<const MvccState> old =
      mvcc_.load(std::memory_order_acquire);
  if (old == nullptr || old->head == nullptr) return 0;
  if (old->head->chain_ops < mvcc_fold_ops_) return 0;
  // Folding is all-or-nothing: it waits until the newest delta clears the
  // watermark, then collapses the whole chain. A pinned reader keeps the
  // chain alive (and growing) rather than risking a torn snapshot.
  if (old->head->epoch > watermark) return 0;
  size_t reclaimed = MvccChainLength(*old);
  auto state = std::make_shared<MvccState>();
  state->base = MvccFoldAll(*old);
  mvcc_.store(std::move(state), std::memory_order_release);
  return reclaimed;
}

size_t TableFragment::MvccResetFromLive(uint64_t epoch) {
  if (!mvcc_enabled_) return 0;
  std::shared_ptr<const MvccState> old =
      mvcc_.load(std::memory_order_acquire);
  size_t dropped = old != nullptr ? MvccChainLength(*old) : 0;
  auto state = std::make_shared<MvccState>();
  state->base = BuildBaseFromLive(epoch);
  mvcc_.store(std::move(state), std::memory_order_release);
  return dropped;
}

size_t TableFragment::MvccChainDeltas() const {
  if (!mvcc_enabled_) return 0;
  std::shared_ptr<const MvccState> state =
      mvcc_.load(std::memory_order_acquire);
  return state != nullptr ? MvccChainLength(*state) : 0;
}

void TableFragment::IndexInsert(LocalRowId lrid, const Row& row) {
  for (auto& idx : indexes_) {
    idx->tree.Insert(row[idx->column], lrid);
  }
}

Status TableFragment::IndexRemove(LocalRowId lrid, const Row& row) {
  for (auto& idx : indexes_) {
    PJVM_RETURN_NOT_OK(idx->tree.Remove(row[idx->column], lrid));
  }
  return Status::OK();
}

Status TableFragment::CheckInvariants() const {
  for (const auto& idx : indexes_) {
    PJVM_RETURN_NOT_OK(idx->tree.CheckInvariants());
    if (idx->tree.num_items() != heap_.num_rows()) {
      return Status::Internal(
          "index on column " + std::to_string(idx->column) + " has " +
          std::to_string(idx->tree.num_items()) + " items but heap has " +
          std::to_string(heap_.num_rows()) + " rows");
    }
    // Every index entry must point at a live row with the indexed key.
    Status st = Status::OK();
    idx->tree.ForEachEntry(
        [&](const Value& key, const std::vector<LocalRowId>& rids) {
          for (LocalRowId lrid : rids) {
            const Row* row = heap_.Get(lrid);
            if (row == nullptr) {
              st = Status::Internal("index entry points at dead rid " +
                                    std::to_string(lrid));
              return false;
            }
            if ((*row)[idx->column] != key) {
              st = Status::Internal("index entry key " + key.ToString() +
                                    " mismatches row " + RowToString(*row));
              return false;
            }
          }
          return true;
        });
    PJVM_RETURN_NOT_OK(st);
  }
  if (row_lookup_enabled_) {
    size_t counted = 0;
    for (const auto& [hash, rids] : row_lookup_) {
      counted += rids.size();
      for (LocalRowId lrid : rids) {
        const Row* row = heap_.Get(lrid);
        if (row == nullptr) {
          return Status::Internal("row-lookup entry points at dead rid");
        }
        if (HashRow(*row) != hash) {
          return Status::Internal("row-lookup hash mismatch");
        }
      }
    }
    if (counted != heap_.num_rows()) {
      return Status::Internal("row-lookup covers " + std::to_string(counted) +
                              " rows, heap has " +
                              std::to_string(heap_.num_rows()));
    }
  }
  return Status::OK();
}

}  // namespace pjvm
