#ifndef PJVM_TXN_LOCK_MANAGER_H_
#define PJVM_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace pjvm {

/// \brief Lock modes: shared (readers) and exclusive (writers).
enum class LockMode { kShared = 0, kExclusive };

const char* LockModeToString(LockMode mode);

/// \brief Identity of a lockable resource: a key of a table's fragment at
/// one node, or the whole fragment (key_hash absent).
struct LockId {
  int node = -1;
  std::string table;
  /// Hash of the locked key value; 0 + whole_table=true locks the fragment.
  uint64_t key_hash = 0;
  bool whole_table = false;

  static LockId Key(int node, std::string table, const Value& key) {
    return LockId{node, std::move(table), key.Hash(), false};
  }
  /// A key value within one indexed column (so probes of A.c = 5 conflict
  /// with writers of rows whose c = 5, but not with other columns' keys).
  static LockId IndexKey(int node, std::string table, int column,
                         const Value& key) {
    uint64_t h = key.Hash() ^ (0x9e3779b97f4a7c15ULL * (column + 1));
    return LockId{node, std::move(table), h, false};
  }
  static LockId Table(int node, std::string table) {
    return LockId{node, std::move(table), 0, true};
  }

  friend bool operator<(const LockId& a, const LockId& b) {
    return std::tie(a.node, a.table, a.whole_table, a.key_hash) <
           std::tie(b.node, b.table, b.whole_table, b.key_hash);
  }
  std::string ToString() const;
};

/// \brief Strict two-phase locking with a *no-wait* policy.
///
/// A request that conflicts with a lock held by another transaction fails
/// immediately with Aborted (the caller rolls back and may retry), which
/// makes deadlock impossible without a waits-for graph — the right trade
/// for the paper's short maintenance transactions, whose lock footprints
/// are a handful of keys. Locks are held until ReleaseAll at commit/abort
/// (strictness). A transaction's own locks never conflict with it, and a
/// shared lock it holds upgrades to exclusive when it is the only holder.
///
/// Table-granularity locks conflict with every key of that fragment, so a
/// sort-merge scan can take one fragment lock instead of thousands of key
/// locks.
///
/// The lock table is shared by all nodes, so every public method takes one
/// internal mutex — required now that the thread-per-node executor acquires
/// locks from per-node workers during parallel probe phases.
class LockManager {
 public:
  /// Acquires (or upgrades) a lock; Aborted on conflict with another txn.
  Status Acquire(uint64_t txn_id, const LockId& id, LockMode mode);

  /// Releases everything the transaction holds (commit or abort).
  void ReleaseAll(uint64_t txn_id);

  /// Number of distinct resources the transaction holds locks on.
  size_t HeldCount(uint64_t txn_id) const;
  /// True if `txn_id` holds a lock on `id` at least as strong as `mode`.
  bool Holds(uint64_t txn_id, const LockId& id, LockMode mode) const;

  /// Total live lock entries (tests / introspection).
  size_t TotalLocks() const;

  /// Drops every lock (crash recovery: all in-flight txns are aborted).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    locks_.clear();
    by_txn_.clear();
  }

 private:
  struct Entry {
    // Holders by txn with their strongest mode.
    std::map<uint64_t, LockMode> holders;
  };

  /// Conflict against holders other than `txn_id`, considering table-vs-key
  /// coverage (a table lock covers all keys and vice versa).
  Status CheckConflicts(uint64_t txn_id, const LockId& id, LockMode mode) const;
  static bool Compatible(LockMode held, LockMode wanted) {
    return held == LockMode::kShared && wanted == LockMode::kShared;
  }

  mutable std::mutex mu_;
  std::map<LockId, Entry> locks_;
  std::map<uint64_t, std::set<LockId>> by_txn_;
};

}  // namespace pjvm

#endif  // PJVM_TXN_LOCK_MANAGER_H_
