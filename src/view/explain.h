#ifndef PJVM_VIEW_EXPLAIN_H_
#define PJVM_VIEW_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "view/maintainer.h"

namespace pjvm {

/// \brief EXPLAIN ANALYZE for one maintenance transaction: where the work
/// went, node by node.
///
/// Filled by ViewManager::ApplyDelta from a per-transaction
/// CostTracker::TxnMeter, so every I/O number is charged by this
/// transaction alone even when other maintenance transactions run
/// concurrently — the per-transaction analogue of the paper's Section 3.3
/// measurement, which isolates one maintenance step rather than reading
/// aggregate totals. (Only `messages`/`bytes_sent` are still global
/// interconnect diffs over the transaction's bracket, because self-node
/// deliveries never reach the cost meter; under concurrency they can
/// include another transaction's traffic.) `nodes_touched` is the
/// per-transaction count the paper's locality claims are about: all L nodes
/// for the naive method, a small constant for auxiliary relations, 1 + K
/// for global indexes.
struct MaintenanceAnalysis {
  std::string table;          ///< Updated base table.
  size_t base_inserts = 0;    ///< Delta rows inserted into the base.
  size_t base_deletes = 0;    ///< Delta rows deleted from the base.

  /// Per-node counter deltas over the whole transaction (base update,
  /// structure maintenance, delta join, view application).
  std::vector<NodeCounters> per_node;
  CostWeights weights;

  double total_workload = 0.0;  ///< Sum over nodes of weighted I/O (TW).
  double response_time = 0.0;   ///< Max over nodes of weighted I/O.
  uint64_t messages = 0;        ///< Interconnect messages (incl. self-sends).
  uint64_t bytes_sent = 0;
  int nodes_touched = 0;        ///< Nodes with any I/O or sends this txn.
  double wall_ms = 0.0;

  /// Retry visibility: how many attempts the bounded retry loop took for
  /// this statement (1 = first try committed), the total backoff slept
  /// between attempts, and each failed attempt's abort reason in order.
  int attempts = 1;
  uint64_t backoff_ns = 0;
  std::vector<std::string> attempt_aborts;

  /// Lock escalations performed by the committed attempt (bulk deltas whose
  /// per-fragment key-lock footprint crossed lock_escalation_threshold), and
  /// how many key-lock entries the fragment locks replaced.
  uint64_t escalations = 0;
  uint64_t lock_entries_reclaimed = 0;

  /// Escrow (value-lock) aggregate maintenance by the committed attempt
  /// (SystemConfig::escrow_aggregates): group increments applied in place
  /// under V locks, and V→X upgrades taken at group birth/death edges.
  uint64_t escrow_ops = 0;
  uint64_t vlock_upgrades = 0;

  /// Aggregate maintainer-side counts (rows, probes, structure writes).
  MaintenanceReport report;

  /// One entry per immediately-maintained view this delta reached.
  struct ViewPhase {
    std::string view;
    MaintenanceMethod method = MaintenanceMethod::kNaive;
    double wall_ms = 0.0;
    size_t rows_inserted = 0;
    size_t rows_deleted = 0;
    size_t probes = 0;
    /// Nodes that did work during this view's maintenance alone.
    int nodes_touched = 0;
  };
  std::vector<ViewPhase> views;

  /// The human-readable EXPLAIN ANALYZE rendering: a per-node table with
  /// the write breakdown, then per-view phase lines and the summary.
  std::string ToString() const;
  std::string ToJson() const;
};

/// Nodes with any activity (I/O or sends) in a per-node counter diff.
int CountTouchedNodes(const std::vector<NodeCounters>& deltas);

}  // namespace pjvm

#endif  // PJVM_VIEW_EXPLAIN_H_
