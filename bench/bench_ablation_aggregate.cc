// Ablation: aggregate join views vs plain join views (the framework's
// extension beyond the paper).
//
// An aggregate view stores one row per group instead of one per join tuple:
// far less storage and far fewer rows to route, but each maintenance
// contribution is a read-modify-write of its group row rather than an
// append. This bench quantifies both sides of that trade under the same
// update stream, for all three maintenance methods.

#include <cstdio>

#include "bench/bench_util.h"

namespace pjvm {
namespace {

struct Outcome {
  double tw = 0.0;
  size_t view_rows = 0;
  size_t view_bytes = 0;
};

Outcome Run(MaintenanceMethod method, bool aggregate) {
  SystemConfig cfg;
  cfg.num_nodes = 8;
  cfg.rows_per_page = 8;
  ParallelSystem sys(cfg);
  TwoTableConfig data;
  data.b_join_keys = 64;
  data.fanout = 8;
  LoadTwoTable(&sys, data).Check();
  ViewManager manager(&sys);
  JoinViewDef def = MakeModelView();
  if (aggregate) {
    def.partition_on.reset();
    def.group_by = {{"A", "c"}};
    def.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {"B", "f"}}};
  }
  manager.RegisterView(def, method).Check();
  std::vector<Row> batch;
  for (int64_t i = 0; i < 256; ++i) batch.push_back(MakeDeltaA(data, i));
  sys.cost().Reset();
  manager.ApplyDelta(DeltaBatch::Inserts("A", batch)).status().Check();
  Outcome out;
  out.tw = sys.cost().TotalWorkload();
  out.view_rows = manager.view("JV")->RowCount();
  out.view_bytes = sys.TableBytes("JV");
  manager.CheckAllConsistent().Check();
  return out;
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  bench::PrintHeader(
      "Plain join view vs aggregate join view: 256-tuple delta, N=8");
  std::printf("%-14s %-10s %12s %12s %12s\n", "method", "view", "TW (I/Os)",
              "view rows", "view bytes");
  bench::BenchReport report("ablation_aggregate");
  bench::JsonWriter rows;
  rows.BeginArray();
  for (MaintenanceMethod method :
       {MaintenanceMethod::kNaive, MaintenanceMethod::kAuxRelation,
        MaintenanceMethod::kGlobalIndex}) {
    Outcome plain = Run(method, false);
    Outcome agg = Run(method, true);
    std::printf("%-14s %-10s %12.0f %12zu %12zu\n",
                MaintenanceMethodToString(method), "plain", plain.tw,
                plain.view_rows, plain.view_bytes);
    std::printf("%-14s %-10s %12.0f %12zu %12zu\n", "", "aggregate", agg.tw,
                agg.view_rows, agg.view_bytes);
    auto emit = [&](const char* kind, const Outcome& out) {
      rows.BeginObject()
          .Key("method").Str(MaintenanceMethodToString(method))
          .Key("view").Str(kind)
          .Key("tw_io").Num(out.tw)
          .Key("view_rows").Uint(out.view_rows)
          .Key("view_bytes").Uint(out.view_bytes)
          .EndObject();
    };
    emit("plain", plain);
    emit("aggregate", agg);
  }
  rows.EndArray();
  report.Add("rows", rows.str());
  report.Write();
  std::printf(
      "\nAggregate views trade per-contribution read-modify-writes for a\n"
      "group-sized footprint; the delta-join (method-dependent) cost is\n"
      "identical, so the method ranking is unchanged.\n");
  return 0;
}
