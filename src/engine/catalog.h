#ifndef PJVM_ENGINE_CATALOG_H_
#define PJVM_ENGINE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"

namespace pjvm {

/// \brief Role a table plays in the system.
enum class TableKind {
  /// A user base relation.
  kBase = 0,
  /// An auxiliary relation: a selection/projection of a base relation
  /// re-partitioned on a join attribute (Section 2.1.2 of the paper).
  kAuxiliary,
  /// A materialized join view.
  kView,
  /// A fragment set of a global index: rows are (key, node, lrid) entries
  /// partitioned on the key (Section 2.1.3 of the paper).
  kGlobalIndex,
};

const char* TableKindToString(TableKind kind);

/// \brief A secondary index declaration on a table.
struct IndexSpec {
  std::string column;
  bool clustered = false;
};

/// \brief How a table's rows map to data server nodes.
struct PartitionSpec {
  enum class Kind {
    /// hash(row[column]) % L — the paper's partitioning on an attribute.
    kHashColumn = 0,
    /// Spread rows evenly with no attribute (a view "not partitioned on an
    /// attribute of A" in the paper's terminology).
    kRoundRobin,
  };

  Kind kind = Kind::kRoundRobin;
  std::string column;

  static PartitionSpec Hash(std::string column) {
    return PartitionSpec{Kind::kHashColumn, std::move(column)};
  }
  static PartitionSpec RoundRobin() {
    return PartitionSpec{Kind::kRoundRobin, ""};
  }

  bool is_hash() const { return kind == Kind::kHashColumn; }
  std::string ToString() const;
};

/// \brief Complete definition of a (distributed) table.
struct TableDef {
  std::string name;
  Schema schema;
  PartitionSpec partition = PartitionSpec::RoundRobin();
  std::vector<IndexSpec> indexes;
  TableKind kind = TableKind::kBase;

  /// Index (into the schema) of the hash-partitioning column, or -1.
  int PartitionColumn() const;
  bool HasIndexOn(const std::string& column) const;
  bool HasClusteredIndexOn(const std::string& column) const;

  std::string ToString() const;
};

/// \brief The system-wide name → table definition map.
class Catalog {
 public:
  Status AddTable(TableDef def);
  Status DropTable(const std::string& name);
  /// Adds a secondary index declaration to an existing table. Rejects
  /// duplicates and a second clustered index.
  Status AddIndexToTable(const std::string& name, IndexSpec index);
  Result<const TableDef*> Get(const std::string& name) const;
  bool Has(const std::string& name) const { return tables_.count(name) > 0; }

  /// Names of all tables, optionally restricted to one kind.
  std::vector<std::string> ListNames() const;
  std::vector<std::string> ListNames(TableKind kind) const;

 private:
  std::map<std::string, TableDef> tables_;
};

}  // namespace pjvm

#endif  // PJVM_ENGINE_CATALOG_H_
