#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

namespace pjvm {

thread_local CostTracker::TxnMeter* CostTracker::active_meter_ = nullptr;

void CostTracker::Stall(double weighted_units) const {
  uint64_t per_unit = stall_ns_.load(std::memory_order_relaxed);
  if (per_unit == 0 || weighted_units <= 0.0) return;
  auto ns = static_cast<uint64_t>(weighted_units * static_cast<double>(per_unit));
  if (ns == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

double CostTracker::TotalWorkload() const {
  double total = 0.0;
  for (const AtomicCounters& n : nodes_) total += n.Load().IO(weights_);
  return total;
}

double CostTracker::ResponseTime() const {
  double rt = 0.0;
  for (const AtomicCounters& n : nodes_) {
    rt = std::max(rt, n.Load().IO(weights_));
  }
  return rt;
}

double CostTracker::ComputeResponseTime() const {
  double rt = 0.0;
  for (const AtomicCounters& n : nodes_) {
    rt = std::max(rt, n.Load().ComputeIO(weights_));
  }
  return rt;
}

uint64_t CostTracker::TotalSends() const {
  uint64_t total = 0;
  for (const AtomicCounters& n : nodes_) {
    total += n.sends.load(std::memory_order_relaxed);
  }
  return total;
}

int CostTracker::NodesTouched() const {
  int count = 0;
  for (const AtomicCounters& n : nodes_) {
    NodeCounters c = n.Load();
    if (c.searches + c.fetches + c.inserts + c.sends > 0) ++count;
  }
  return count;
}

void CostTracker::Reset() {
  for (AtomicCounters& n : nodes_) n.Clear();
}

std::vector<NodeCounters> CostTracker::Snapshot() const {
  std::vector<NodeCounters> out;
  out.reserve(nodes_.size());
  for (const AtomicCounters& n : nodes_) out.push_back(n.Load());
  return out;
}

std::string CostTracker::ToString() const {
  std::ostringstream os;
  os << "CostTracker{TW=" << TotalWorkload() << " RT=" << ResponseTime()
     << " sends=" << TotalSends() << " nodes=[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) os << " ";
    os << nodes_[i].Load().IO(weights_);
  }
  os << "]}";
  return os.str();
}

}  // namespace pjvm
