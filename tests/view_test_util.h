#ifndef PJVM_TESTS_VIEW_TEST_UTIL_H_
#define PJVM_TESTS_VIEW_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/system.h"
#include "view/view_def.h"
#include "view/view_manager.h"

namespace pjvm {

/// Multiset fingerprint of rows for bag-semantics comparison.
inline std::map<std::string, int> RowBag(const std::vector<Row>& rows) {
  std::map<std::string, int> bag;
  for (const Row& row : rows) bag[RowToString(row)]++;
  return bag;
}

/// Schema A(a, c, e): key a, join attribute c, payload e.
inline Schema ASchema() {
  return Schema({{"a", ValueType::kInt64},
                 {"c", ValueType::kInt64},
                 {"e", ValueType::kInt64}});
}

/// Schema B(b, d, f): key b, join attribute d, payload f.
inline Schema BSchema() {
  return Schema({{"b", ValueType::kInt64},
                 {"d", ValueType::kInt64},
                 {"f", ValueType::kInt64}});
}

/// Schema C(g, h, i): join attribute g (to B.f), payload.
inline Schema CSchema() {
  return Schema({{"g", ValueType::kInt64},
                 {"h", ValueType::kInt64},
                 {"i", ValueType::kInt64}});
}

inline TableDef MakeTableDef(const std::string& name, Schema schema,
                             const std::string& partition_col) {
  TableDef def;
  def.name = name;
  def.schema = std::move(schema);
  def.partition = PartitionSpec::Hash(partition_col);
  return def;
}

/// The standard two-table setup of the paper's model experiments: neither A
/// nor B is partitioned on the join attribute (case 2). B has `fanout` rows
/// per join-key value in [0, b_keys).
struct TwoTableFixture {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
  int64_t next_a_key = 0;

  explicit TwoTableFixture(int num_nodes, int64_t b_keys = 20,
                           int64_t fanout = 2, int rows_per_page = 4,
                           bool b_clustered_on_d = false) {
    SystemConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.rows_per_page = rows_per_page;
    sys = std::make_unique<ParallelSystem>(cfg);
    TableDef a = MakeTableDef("A", ASchema(), "a");
    TableDef b = MakeTableDef("B", BSchema(), "b");
    if (b_clustered_on_d) b.indexes.push_back(IndexSpec{"d", true});
    sys->CreateTable(a).Check();
    sys->CreateTable(b).Check();
    int64_t bkey = 0;
    for (int64_t k = 0; k < b_keys; ++k) {
      for (int64_t r = 0; r < fanout; ++r) {
        sys->Insert("B", {Value{bkey}, Value{k}, Value{bkey * 10}}).Check();
        ++bkey;
      }
    }
    manager = std::make_unique<ViewManager>(sys.get());
  }

  /// A view over A join B on c = d.
  JoinViewDef MakeView(const std::string& name,
                       bool partition_on_a_attr = true) {
    JoinViewDef def;
    def.name = name;
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    if (partition_on_a_attr) def.partition_on = ColumnRef{"A", "e"};
    return def;
  }

  Row NextARow(int64_t join_key) {
    int64_t k = next_a_key++;
    return {Value{k}, Value{join_key}, Value{k * 100}};
  }
};

}  // namespace pjvm

#endif  // PJVM_TESTS_VIEW_TEST_UTIL_H_
