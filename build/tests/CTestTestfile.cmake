# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/view_def_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/cost_agreement_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_view_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/statement_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/range_query_test[1]_include.cmake")
include("/root/repo/build/tests/deferred_test[1]_include.cmake")
