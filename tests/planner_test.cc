#include <gtest/gtest.h>

#include "tests/view_test_util.h"
#include "view/planner.h"

namespace pjvm {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable(MakeTableDef("A", ASchema(), "a")).ok());
    ASSERT_TRUE(catalog_.AddTable(MakeTableDef("B", BSchema(), "b")).ok());
    ASSERT_TRUE(catalog_.AddTable(MakeTableDef("C", CSchema(), "h")).ok());
  }

  BoundView Chain() {
    JoinViewDef def;
    def.name = "chain";
    def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}, {{"B", "f"}, {"C", "g"}}};
    return *BoundView::Bind(def, catalog_);
  }

  Catalog catalog_;
};

FanoutFn UniformFanout(double f) {
  return [f](int, int) { return f; };
}

TEST_F(PlannerTest, ChainFromEndFollowsTheChain) {
  BoundView view = Chain();
  auto plan = PlanMaintenance(view, 0, UniformFanout(2));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].target_base, 1);  // B first (only reachable).
  EXPECT_EQ(plan->steps[1].target_base, 2);  // Then C.
  EXPECT_EQ(plan->steps[0].source_base, 0);
  EXPECT_EQ(plan->steps[1].source_base, 1);
  EXPECT_TRUE(plan->steps[0].residual.empty());
}

TEST_F(PlannerTest, ChainFromMiddleHasTwoIndependentSteps) {
  BoundView view = Chain();
  auto plan = PlanMaintenance(view, 1, UniformFanout(2));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 2u);
  // Both A and C hang off B; both must appear.
  std::set<int> targets = {plan->steps[0].target_base,
                           plan->steps[1].target_base};
  EXPECT_EQ(targets, (std::set<int>{0, 2}));
  EXPECT_EQ(plan->steps[0].source_base, 1);
  EXPECT_EQ(plan->steps[1].source_base, 1);
}

TEST_F(PlannerTest, GreedyPicksSmallerFanoutFirst) {
  BoundView view = Chain();
  // From B: joining A has fanout 5, joining C has fanout 1.
  FanoutFn fanout = [](int base, int) { return base == 0 ? 5.0 : 1.0; };
  auto plan = PlanMaintenance(view, 1, fanout);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps[0].target_base, 2);  // C (cheap) before A.
  EXPECT_EQ(plan->steps[1].target_base, 0);
}

TEST_F(PlannerTest, EnumerateAllPlansForChain) {
  BoundView view = Chain();
  // From base 0 the chain admits exactly one order; from base 1, two.
  EXPECT_EQ(EnumerateAllPlans(view, 0).size(), 1u);
  EXPECT_EQ(EnumerateAllPlans(view, 1).size(), 2u);
  EXPECT_EQ(EnumerateAllPlans(view, 2).size(), 1u);
}

TEST_F(PlannerTest, EstimateCostOrdersPlansSensibly) {
  BoundView view = Chain();
  FanoutFn fanout = [](int base, int) { return base == 0 ? 10.0 : 1.0; };
  std::vector<MaintenancePlan> plans = EnumerateAllPlans(view, 1);
  ASSERT_EQ(plans.size(), 2u);
  double c0 = EstimatePlanCost(view, plans[0], fanout);
  double c1 = EstimatePlanCost(view, plans[1], fanout);
  EXPECT_NE(c0, c1);
  // The greedy plan achieves the min enumerated cost.
  auto greedy = PlanMaintenance(view, 1, fanout);
  ASSERT_TRUE(greedy.ok());
  EXPECT_DOUBLE_EQ(EstimatePlanCost(view, *greedy, fanout), std::min(c0, c1));
}

TEST_F(PlannerTest, CyclicGraphProducesResidualChecks) {
  // Triangle: A-B, B-C, C-A. Starting at A, the second step must carry the
  // closing edge as a residual check.
  JoinViewDef def;
  def.name = "tri";
  def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
  def.edges = {{{"A", "c"}, {"B", "d"}},
               {{"B", "f"}, {"C", "g"}},
               {{"C", "h"}, {"A", "e"}}};
  auto bound = BoundView::Bind(def, catalog_);
  ASSERT_TRUE(bound.ok());
  auto plan = PlanMaintenance(*bound, 0, UniformFanout(1));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_TRUE(plan->steps[0].residual.empty());
  EXPECT_EQ(plan->steps[1].residual.size(), 1u);
}

TEST_F(PlannerTest, InvalidBaseRejected) {
  BoundView view = Chain();
  EXPECT_FALSE(PlanMaintenance(view, -1, UniformFanout(1)).ok());
  EXPECT_FALSE(PlanMaintenance(view, 9, UniformFanout(1)).ok());
  EXPECT_TRUE(EnumerateAllPlans(view, 9).empty());
}

TEST_F(PlannerTest, ToStringMentionsAliases) {
  BoundView view = Chain();
  auto plan = PlanMaintenance(view, 0, UniformFanout(1));
  ASSERT_TRUE(plan.ok());
  std::string s = plan->ToString(view);
  EXPECT_NE(s.find("delta(A)"), std::string::npos);
  EXPECT_NE(s.find("-> B"), std::string::npos);
  EXPECT_NE(s.find("-> C"), std::string::npos);
}

TEST_F(PlannerTest, TwoWayViewHasSingleStep) {
  JoinViewDef def;
  def.name = "two";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  auto bound = BoundView::Bind(def, catalog_);
  ASSERT_TRUE(bound.ok());
  auto plan = PlanMaintenance(*bound, 0, UniformFanout(1));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].target_col, 1);  // B.d
  EXPECT_EQ(plan->steps[0].source_col, 1);  // A.c
}

}  // namespace
}  // namespace pjvm
