#ifndef PJVM_VIEW_MERGED_STORAGE_H_
#define PJVM_VIEW_MERGED_STORAGE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/system.h"
#include "storage/merged_tree.h"
#include "view/maintainer.h"
#include "view/view_def.h"

namespace pjvm {

// Defined in view/view_manager.h; forward-declared here (scoped enums have a
// fixed int underlying type) to avoid a header cycle with ViewManager.
enum class MaintenanceTiming;

/// \brief Per-view merged co-clustered storage for the AR method
/// (SystemConfig::merged_ar_storage).
///
/// The separate layout keeps one B-tree per structure a maintenance delta
/// touches: the AR's clustered index, the view's partition index, and (when
/// co-partitioned) the base's join-attribute index. Every delta row pays one
/// tree descent per structure. The merged layout instead keeps, per node, ONE
/// key-ordered tree whose composite key is (join_key, source_tag, source_pk)
/// — see storage/merged_tree.h — interleaving the partition-aligned source
/// rows and the view tuples of each join key. A maintenance delta descends
/// once into the key's range and performs every probe and edit in-range, so
/// the per-delta descent count drops from O(#structures) to O(#key ranges).
///
/// **Cluster membership.** The merged tree is keyed by the view's output
/// partitioning attribute. A (base, column) pair is a cluster *member* when
/// its join edges connect it — transitively — to that attribute: any row of
/// the member with column value k lands on HomeNodeForKey(k), the same node
/// as the view rows with partition value k, so co-clustering them is free of
/// extra shipping. Each member stores pi(sigma_view(base)) rows projected to
/// the columns this view needs (plus the join and predicate columns) —
/// exactly what the probe path consumes, pre-filtered by the view's own
/// selection predicates. Bases outside the cluster keep the normal AR probe
/// path.
///
/// **Source of truth.** Heap contents (base tables, ARs, the view table)
/// remain authoritative; the merged tree is a redundant key-ordered access
/// path, rebuilt from the heaps at registration and after crash recovery
/// (invariant 10 in DESIGN.md: its contents must always equal the
/// rebuild-from-heap expectation, so merged and separate layouts hold
/// byte-identical view contents).
///
/// **Concurrency.** Tree edits and scans run under the owning node's latch
/// (exclusive / shared), like every other per-node structure. Transactions
/// serialize per key range: the first merged operation of a transaction on
/// one (node, join key) range takes an EXCLUSIVE range lock —
/// LockId::IndexKey(node, "__merged_<view>", 0, key) — composing with lock
/// escalation and the wait-die retry loop like any other key lock; later
/// operations of the same transaction on that range are free. Edits are
/// applied eagerly and journaled: commit forgets the journal, abort applies
/// the inverse edits in reverse *before* the lock release, so no successor
/// can acquire the range and observe a half-rolled-back tree (strict 2PL).
///
/// **Cost accounting.** The first operation per (txn, node, range) charges
/// one SEARCH and one tree descent (CostTracker::ChargeDescent) and bumps
/// `pjvm_merged_range_ops`; in-range probes and edits charge nothing more.
/// The separate layout charges one SEARCH per probe and one descent per
/// index touched, so the two layouts are compared on identical primitives.
/// `pjvm_merged_bytes` gauges the trees' footprint, which TableBytes
/// attributes to the owning view via the storage overlay.
class MergedViewStorage {
 public:
  /// One base/AR source interleaved into the merged tree.
  struct Member {
    int base_idx = -1;         ///< Index within the view's bases.
    std::string source_table;  ///< Base table the member mirrors.
    int col = -1;              ///< Full-schema join column (cluster attr).
    /// Ascending full-schema columns stored (needed + col + pred columns).
    std::vector<int> cols;
    /// The view's selection predicates on this base (full-schema columns);
    /// rows failing them never enter the tree.
    std::vector<BoundPred> preds;
    /// Position of each needed column (bound.needed_cols order) in `cols`.
    std::vector<int> needed_pos;
    uint8_t tag = 0;
  };

  /// True when `bound` can use merged storage under this configuration:
  /// the knob is on, the method is AUX_RELATION with immediate timing, the
  /// view is non-aggregate and hash-partitioned on an output column.
  static bool Eligible(const SystemConfig& config, const BoundView& bound,
                       MaintenanceMethod method, MaintenanceTiming timing);

  /// Computes the cluster for an eligible view. The trees start empty; call
  /// RebuildFromHeaps() once the view table is backfilled.
  MergedViewStorage(ParallelSystem* sys, const BoundView& bound);

  const std::string& view_name() const { return view_name_; }
  /// The pseudo-table name range locks are taken under.
  const std::string& lock_table() const { return lock_table_; }
  const std::vector<Member>& members() const { return members_; }

  /// True when (base_idx, col) is a cluster member, i.e. a maintenance step
  /// targeting it can probe the merged tree instead of the AR.
  bool CoversBase(int base_idx, int col) const;

  /// Probes member `(base_idx, col)`'s rows for `key` at `node`, emitting
  /// each matching row projected to the base's needed tuple. Charges the
  /// range descent on first touch (see class comment). The column
  /// disambiguates bases that contribute two join columns to the cluster.
  Status ProbeMember(uint64_t txn, int node, int base_idx, int col,
                     const Value& key,
                     const std::function<Status(const Row&)>& fn);

  /// Mirrors one base-table delta into the member entries (deletes first),
  /// piggybacking on the structure-update phase: the rows were already
  /// shipped to their key homes, so mirroring sends nothing. Rows failing a
  /// member's predicates are skipped. No-op for non-member tables.
  Status MirrorDelta(uint64_t txn, const DeltaBatch& delta);

  /// Mirrors one view-row insert/delete (wired into
  /// MaterializedView::ApplyOutputs through the merged hook).
  Status ApplyViewEdit(uint64_t txn, int node, const Row& row, bool is_delete);

  /// Commit epilogue: forgets the transaction's journal and open ranges.
  void OnCommit(uint64_t txn);
  /// Abort epilogue: applies the transaction's inverse edits in reverse.
  /// MUST run before the transaction's locks are released (see class
  /// comment); ViewManager calls it before System::Abort.
  void OnAbort(uint64_t txn);

  /// Drops and rebuilds every node's tree from the current heap contents
  /// (registration backfill; crash recovery). Also clears any in-flight
  /// transaction state. Charges nothing.
  Status RebuildFromHeaps();

  /// Verifies invariant 10: each node's tree holds exactly the member and
  /// view rows the heaps imply, entry for entry.
  Status CheckConsistent() const;

  /// Total tree footprint across nodes (the TableBytes overlay source).
  size_t TreeBytes() const;
  /// Range descents charged since construction (tests/bench).
  uint64_t range_ops() const;

 private:
  struct Edit {
    int node;
    Value join_key;
    uint8_t tag;
    Row row;
    bool was_insert;
  };
  struct TxnState {
    /// (node, key prefix) ranges already locked + charged.
    std::set<std::pair<int, std::string>> ranges;
    std::vector<Edit> journal;
  };

  /// First-touch bookkeeping for (txn, node, key): range lock, SEARCH +
  /// descent charge, pjvm_merged_range_ops. Aborted when the lock loses.
  Status EnsureRange(uint64_t txn, int node, const Value& key);
  /// One journaled tree edit under the node's exclusive latch.
  Status ApplyEdit(uint64_t txn, int node, const Value& key, uint8_t tag,
                   const Row& row, bool is_insert);

  ParallelSystem* sys_;
  std::string view_name_;
  std::string lock_table_;
  int view_pcol_ = -1;  ///< Output-row column the composite key comes from.
  std::vector<Member> members_;
  /// One tree per node, index == node id. Guarded by the node's latch.
  std::vector<std::unique_ptr<MergedTreeFragment>> trees_;

  /// Guards txns_ only (never held across a lock acquire or a latch).
  mutable std::mutex mu_;
  std::map<uint64_t, TxnState> txns_;
  std::atomic<uint64_t> range_ops_{0};
};

}  // namespace pjvm

#endif  // PJVM_VIEW_MERGED_STORAGE_H_
