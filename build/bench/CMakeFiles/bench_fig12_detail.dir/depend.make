# Empty dependencies file for bench_fig12_detail.
# This may be replaced when dependencies are built.
