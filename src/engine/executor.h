#ifndef PJVM_ENGINE_EXECUTOR_H_
#define PJVM_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pjvm {

/// \brief Thread-per-node task executor: the engine's execution substrate.
///
/// One worker thread is pinned to each data server node, so per-node work in
/// fan-out phases (SelectEq/SelectRange broadcasts, InsertMany, the
/// maintainers' probe phases) runs with real parallelism. Each node's
/// fragments, indexes, and WAL are additionally guarded by the node's
/// physical latch (see Node::latch()): node i's worker is the common writer,
/// but client threads running concurrent transactions may read or write a
/// node's structures directly under the latch.
///
/// In `inline_mode` no threads are spawned and every submitted task runs
/// immediately in the caller's thread, in submission order — the sequential
/// reference semantics. Both modes drive the same call sites, which is what
/// makes cost accounting provably identical between them (see
/// tests/executor_test.cc).
///
/// Orchestration protocol: **multiple coordinating threads may call
/// RunOnNodes/RunOnAllNodes concurrently** — each call waits on its own
/// completion record, not on a global barrier, so one client's fan-out never
/// blocks on another's. Tasks themselves must never submit or wait (no
/// nesting), and must never block on transaction locks (a parked task stalls
/// the node's whole FIFO queue — the lock manager enforces this through
/// WorkerContext). The raw SubmitTo*/WaitAll interface keeps the legacy
/// single-coordinator semantics: WaitAll is a global barrier over *all*
/// outstanding tasks and is only meaningful when one thread orchestrates.
class NodeExecutor {
 public:
  explicit NodeExecutor(int num_nodes, bool inline_mode = false);
  ~NodeExecutor();

  NodeExecutor(const NodeExecutor&) = delete;
  NodeExecutor& operator=(const NodeExecutor&) = delete;

  int num_nodes() const { return num_nodes_; }
  bool inline_mode() const { return inline_mode_; }

  /// Enqueues `fn` for node `node`'s worker (runs immediately when inline).
  void SubmitToNode(int node, std::function<void()> fn);

  /// Enqueues `fn(node)` for every node's worker.
  void SubmitToAll(const std::function<void(int)>& fn);

  /// Global barrier: returns once every submitted task has finished —
  /// including tasks submitted by other threads. Single-coordinator use.
  void WaitAll();

  /// Runs `fn(node)` on every node's worker and waits for *this call's*
  /// tasks. Every node runs even if another fails; the first non-OK status
  /// in node order is returned, so the outcome is deterministic regardless
  /// of scheduling. Safe to call from multiple client threads concurrently.
  Status RunOnAllNodes(const std::function<Status(int)>& fn);

  /// Same, restricted to `nodes` (first failure in the listed order).
  Status RunOnNodes(const std::vector<int>& nodes,
                    const std::function<Status(int)>& fn);

  /// Drains outstanding tasks, then stops and joins every worker.
  /// Idempotent; called by the destructor (and by ~ParallelSystem before the
  /// nodes the workers reference are torn down).
  void Shutdown();

 private:
  /// Per-call completion record for RunOnNodes/RunOnAllNodes: each
  /// coordinating thread waits for its own batch, never for another's.
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  };

  void WorkerLoop(int node);
  Status RunBatch(const std::vector<int>& nodes,
                  const std::function<Status(int)>& fn);

  const int num_nodes_;
  const bool inline_mode_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signaled on submit and on shutdown
  std::condition_variable done_cv_;  // signaled when pending_ drains to zero
  std::vector<std::deque<std::function<void()>>> queues_;
  size_t pending_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace pjvm

#endif  // PJVM_ENGINE_EXECUTOR_H_
